// Package client is the reconnecting twsearchd client: the network-side
// mirror of the seqdb search API. A Client owns one connection, redials
// transparently on the next call after any transport failure, and maps
// context deadlines onto both the socket and the server's own per-request
// deadline, so a timeout fires on whichever side notices first.
//
// A Client serializes its calls (the protocol is one request at a time per
// connection); for concurrent query streams, use one Client per goroutine
// — the server side is built for many connections.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"twsearch/internal/wire"
	"twsearch/seqdb"
)

// Options tunes a Client.
type Options struct {
	// DialTimeout bounds connection establishment (including the
	// handshake); <= 0 means 5 seconds.
	DialTimeout time.Duration
}

const defaultDialTimeout = 5 * time.Second

// Client is a twsearchd connection handle. Safe for concurrent use;
// requests serialize on the single underlying connection.
type Client struct {
	addr string
	opts Options

	// mu serializes requests and guards the connection state below.
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a twsearchd server and validates the handshake. The
// returned client redials automatically if the connection later fails.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions is Dial with explicit options.
//
//twlint:ctx-root connection setup outside any request; the dial deadline comes from opts.DialTimeout, not a caller ctx
func DialOptions(addr string, opts Options) (*Client, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = defaultDialTimeout
	}
	c := &Client{addr: addr, opts: opts}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// Close releases the connection. The client is not usable afterwards
// except by the zero-cost guarantee that a later call simply redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropLocked()
}

// ensureConn dials and performs the handshake if no live connection
// exists. Caller holds c.mu.
func (c *Client) ensureConn(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("client: dialing %s: %w", c.addr, err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	if err := conn.SetDeadline(time.Now().Add(c.opts.DialTimeout)); err != nil {
		conn.Close()
		return err
	}
	if err := wire.WriteHello(bw); err != nil {
		conn.Close()
		return fmt.Errorf("client: handshake: %w", err)
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return fmt.Errorf("client: handshake: %w", err)
	}
	if _, err := wire.ReadHello(br); err != nil {
		conn.Close()
		return fmt.Errorf("client: handshake: %w", err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return err
	}
	c.conn, c.br, c.bw = conn, br, bw
	return nil
}

// dropLocked closes and forgets the connection; the next call redials.
// Caller holds c.mu.
func (c *Client) dropLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.br, c.bw = nil, nil, nil
	return err
}

// fail drops the connection after a transport error and shapes the
// returned error: if the caller's context expired, that is the cause worth
// reporting, not the socket-level symptom. Caller holds c.mu.
func (c *Client) fail(ctx context.Context, err error) error {
	c.dropLocked()
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("client: %w: %w", err, ctxErr)
	}
	return fmt.Errorf("client: %w", err)
}

// begin readies the connection for one request under ctx: redial if
// needed, mirror the context deadline onto the socket, and return the
// remaining budget as the server-side timeout hint. Caller holds c.mu.
func (c *Client) begin(ctx context.Context) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := c.ensureConn(ctx); err != nil {
		return 0, err
	}
	var hint time.Duration
	deadline, ok := ctx.Deadline()
	if ok {
		hint = time.Until(deadline)
		if hint <= 0 {
			return 0, context.DeadlineExceeded
		}
	}
	if err := c.conn.SetDeadline(deadline); err != nil { // zero time clears
		return 0, c.fail(ctx, err)
	}
	return hint, nil
}

// send writes one request frame. Caller holds c.mu.
func (c *Client) send(ctx context.Context, t byte, body []byte) error {
	if err := wire.WriteFrame(c.bw, t, body); err != nil {
		return c.fail(ctx, err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(ctx, err)
	}
	return nil
}

// finish clears the per-request socket deadline. Caller holds c.mu.
func (c *Client) finish() {
	if c.conn != nil {
		c.conn.SetDeadline(time.Time{})
	}
}

// SearchVisit streams a range search's answers to fn as they arrive from
// the server; returning false stops the stream. Stopping early drops the
// connection — that is the wire's cancellation signal; the server aborts
// the search when its next write fails — and the client redials on the
// next call.
func (c *Client) SearchVisit(ctx context.Context, db, index string, q []float64, eps float64, fn func(seqdb.Match) bool) (seqdb.SearchStats, error) {
	return c.SearchVisitWith(ctx, db, index, q, eps, fn, seqdb.SearchOptions{})
}

// SearchVisitWith is SearchVisit with execution options. The parallelism
// hint travels with the request; the server caps it at its own configured
// maximum, and answers are byte-identical either way.
func (c *Client) SearchVisitWith(ctx context.Context, db, index string, q []float64, eps float64, fn func(seqdb.Match) bool, opts seqdb.SearchOptions) (seqdb.SearchStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var stats seqdb.SearchStats
	hint, err := c.begin(ctx)
	if err != nil {
		return stats, err
	}
	req := wire.SearchReq{DB: db, Index: index, Eps: eps, Timeout: hint, Parallelism: opts.Parallelism, Query: q}
	if err := c.send(ctx, wire.TSearch, req.Encode(nil)); err != nil {
		return stats, err
	}
	return c.readMatchStream(ctx, fn)
}

// readMatchStream consumes TMatch frames until TDone or TError. Caller
// holds c.mu and has sent a search-shaped request.
func (c *Client) readMatchStream(ctx context.Context, fn func(seqdb.Match) bool) (seqdb.SearchStats, error) {
	var stats seqdb.SearchStats
	for {
		t, body, err := wire.ReadFrame(c.br)
		if err != nil {
			return stats, c.fail(ctx, err)
		}
		switch t {
		case wire.TMatch:
			wm, err := wire.DecodeMatch(body)
			if err != nil {
				return stats, c.fail(ctx, err)
			}
			m := seqdb.Match{SeqID: wm.SeqID, Seq: wm.Seq, Start: wm.Start, End: wm.End, Distance: wm.Distance}
			if !fn(m) {
				c.dropLocked()
				return stats, nil
			}
		case wire.TDone:
			d, err := wire.DecodeDone(body)
			if err != nil {
				return stats, c.fail(ctx, err)
			}
			c.finish()
			return d.Stats, nil
		case wire.TError:
			e, err := wire.DecodeError(body)
			if err != nil {
				return stats, c.fail(ctx, err)
			}
			c.finish()
			return stats, e
		default:
			return stats, c.fail(ctx, fmt.Errorf("unexpected frame type %#x in match stream", t))
		}
	}
}

// Search runs a range search and returns the full answer set sorted by
// (sequence, start, end) — the same order, distances and stats the
// in-process seqdb.DB.Search produces.
func (c *Client) Search(ctx context.Context, db, index string, q []float64, eps float64) ([]seqdb.Match, seqdb.SearchStats, error) {
	return c.SearchWith(ctx, db, index, q, eps, seqdb.SearchOptions{})
}

// SearchWith is Search with execution options; see SearchVisitWith.
func (c *Client) SearchWith(ctx context.Context, db, index string, q []float64, eps float64, opts seqdb.SearchOptions) ([]seqdb.Match, seqdb.SearchStats, error) {
	var ms []seqdb.Match
	stats, err := c.SearchVisitWith(ctx, db, index, q, eps, func(m seqdb.Match) bool {
		ms = append(ms, m)
		return true
	}, opts)
	if err != nil {
		return nil, stats, err
	}
	sortMatches(ms)
	return ms, stats, nil
}

// SearchKNN returns the k nearest subsequences; order mirrors the
// in-process SearchKNN (position order).
func (c *Client) SearchKNN(ctx context.Context, db, index string, q []float64, k int) ([]seqdb.Match, seqdb.SearchStats, error) {
	return c.SearchKNNWith(ctx, db, index, q, k, seqdb.SearchOptions{})
}

// SearchKNNWith is SearchKNN with execution options; see SearchVisitWith.
func (c *Client) SearchKNNWith(ctx context.Context, db, index string, q []float64, k int, opts seqdb.SearchOptions) ([]seqdb.Match, seqdb.SearchStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hint, err := c.begin(ctx)
	if err != nil {
		return nil, seqdb.SearchStats{}, err
	}
	req := wire.KNNReq{DB: db, Index: index, K: k, Timeout: hint, Parallelism: opts.Parallelism, Query: q}
	if err := c.send(ctx, wire.TKNN, req.Encode(nil)); err != nil {
		return nil, seqdb.SearchStats{}, err
	}
	return c.collectMatchStream(ctx)
}

// SeqScan runs the exhaustive baseline server-side.
func (c *Client) SeqScan(ctx context.Context, db string, q []float64, eps float64) ([]seqdb.Match, seqdb.SearchStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hint, err := c.begin(ctx)
	if err != nil {
		return nil, seqdb.SearchStats{}, err
	}
	req := wire.ScanReq{DB: db, Eps: eps, Timeout: hint, Query: q}
	if err := c.send(ctx, wire.TScan, req.Encode(nil)); err != nil {
		return nil, seqdb.SearchStats{}, err
	}
	return c.collectMatchStream(ctx)
}

// collectMatchStream materializes a match stream in server order. Caller
// holds c.mu.
func (c *Client) collectMatchStream(ctx context.Context) ([]seqdb.Match, seqdb.SearchStats, error) {
	var ms []seqdb.Match
	stats, err := c.readMatchStream(ctx, func(m seqdb.Match) bool {
		ms = append(ms, m)
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	return ms, stats, nil
}

// Stats returns the dataset summary of a mounted DB.
func (c *Client) Stats(ctx context.Context, db string) (seqdb.Stats, error) {
	resp, err := c.statsResp(ctx, db)
	return resp.Stats, err
}

// StatsPools returns the dataset summary of a mounted DB together with each
// open index's buffer-pool shard counters.
func (c *Client) StatsPools(ctx context.Context, db string) (seqdb.Stats, []seqdb.IndexPoolStats, error) {
	resp, err := c.statsResp(ctx, db)
	if err != nil {
		return seqdb.Stats{}, nil, err
	}
	pools := make([]seqdb.IndexPoolStats, len(resp.Pools))
	for i, p := range resp.Pools {
		shards := make([]seqdb.PoolShardStats, len(p.Shards))
		for j, sh := range p.Shards {
			shards[j] = seqdb.PoolShardStats{Hits: sh.Hits, Misses: sh.Misses, Evictions: sh.Evictions}
		}
		pools[i] = seqdb.IndexPoolStats{Index: p.Index, Shards: shards}
	}
	return resp.Stats, pools, nil
}

func (c *Client) statsResp(ctx context.Context, db string) (wire.StatsResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.begin(ctx); err != nil {
		return wire.StatsResp{}, err
	}
	req := wire.StatsReq{DB: db}
	if err := c.send(ctx, wire.TStats, req.Encode(nil)); err != nil {
		return wire.StatsResp{}, err
	}
	t, body, err := wire.ReadFrame(c.br)
	if err != nil {
		return wire.StatsResp{}, c.fail(ctx, err)
	}
	switch t {
	case wire.TStatsResp:
		resp, err := wire.DecodeStatsResp(body)
		if err != nil {
			return wire.StatsResp{}, c.fail(ctx, err)
		}
		c.finish()
		return resp, nil
	case wire.TError:
		e, err := wire.DecodeError(body)
		if err != nil {
			return wire.StatsResp{}, c.fail(ctx, err)
		}
		c.finish()
		return wire.StatsResp{}, e
	}
	return wire.StatsResp{}, c.fail(ctx, fmt.Errorf("unexpected frame type %#x", t))
}

// ListIndexes returns the open indexes of a mounted DB, sorted by name.
func (c *Client) ListIndexes(ctx context.Context, db string) ([]seqdb.IndexInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.begin(ctx); err != nil {
		return nil, err
	}
	req := wire.ListIndexesReq{DB: db}
	if err := c.send(ctx, wire.TListIndexes, req.Encode(nil)); err != nil {
		return nil, err
	}
	t, body, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, c.fail(ctx, err)
	}
	switch t {
	case wire.TIndexes:
		resp, err := wire.DecodeIndexesResp(body)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		c.finish()
		out := make([]seqdb.IndexInfo, len(resp.Indexes))
		for i, ix := range resp.Indexes {
			out[i] = seqdb.IndexInfo{
				Name: ix.Name,
				Spec: seqdb.IndexSpec{
					Method:       seqdb.Method(ix.Method),
					Categories:   ix.Categories,
					Sparse:       ix.Sparse,
					Window:       ix.Window,
					MinAnswerLen: ix.MinAnswerLen,
				},
				SizeBytes: ix.SizeBytes,
				Leaves:    ix.Leaves,
				Nodes:     ix.Nodes,
			}
		}
		return out, nil
	case wire.TError:
		e, err := wire.DecodeError(body)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		c.finish()
		return nil, e
	}
	return nil, c.fail(ctx, fmt.Errorf("unexpected frame type %#x", t))
}
