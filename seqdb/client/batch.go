package client

// The client side of the protocol-v4 batch RPC: many queries travel in one
// TBatch frame and the answers come back as one multiplexed stream, so a
// query workload pays one round-trip and one server admission slot instead
// of N. The client demultiplexes by item ID and returns per-item results
// in request order.

import (
	"context"
	"fmt"
	"sort"

	"twsearch/internal/wire"
	"twsearch/seqdb"
)

// sortMatches puts matches in the deterministic (sequence, start, end)
// order the in-process seqdb API returns.
func sortMatches(ms []seqdb.Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.End < b.End
	})
}

// BatchQuery is one query of a Batch call: a range search (K == 0, Eps is
// the threshold) or a k-nearest-neighbor search (K > 0, Eps ignored)
// through the named index.
type BatchQuery struct {
	Index string
	Eps   float64
	K     int
	Query []float64
}

// BatchResult is one query's outcome. Exactly one of Err set / results
// valid: when Err is nil, Matches is sorted by (sequence, start, end) and
// Stats carries that item's work counters.
type BatchResult struct {
	Matches []seqdb.Match
	Stats   seqdb.SearchStats
	Err     error
}

// Batch runs many queries in one round-trip and returns one result per
// query, in request order. An individual query's failure lands in its
// result's Err; Batch itself fails only when the whole batch did
// (transport, overload, deadline, unknown DB). The returned stats are the
// batch-wide aggregate the server measured.
func (c *Client) Batch(ctx context.Context, db string, queries []BatchQuery, opts seqdb.SearchOptions) ([]BatchResult, seqdb.SearchStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var agg seqdb.SearchStats
	hint, err := c.begin(ctx)
	if err != nil {
		return nil, agg, err
	}
	req := wire.BatchReq{DB: db, Timeout: hint, Parallelism: opts.Parallelism}
	for _, q := range queries {
		op := wire.BatchOpSearch
		if q.K > 0 {
			op = wire.BatchOpKNN
		}
		req.Items = append(req.Items, wire.BatchItem{Op: op, Index: q.Index, Eps: q.Eps, K: q.K, Query: q.Query})
	}
	if err := c.send(ctx, wire.TBatch, req.Encode(nil)); err != nil {
		return nil, agg, err
	}

	results := make([]BatchResult, len(queries))
	settled := make([]bool, len(queries))
	for {
		t, body, err := wire.ReadFrame(c.br)
		if err != nil {
			return nil, agg, c.fail(ctx, err)
		}
		switch t {
		case wire.TBatchMatch:
			bm, err := wire.DecodeBatchMatch(body)
			if err != nil {
				return nil, agg, c.fail(ctx, err)
			}
			if bm.ID < 0 || bm.ID >= len(results) {
				return nil, agg, c.fail(ctx, fmt.Errorf("batch match for unknown item %d", bm.ID))
			}
			results[bm.ID].Matches = append(results[bm.ID].Matches,
				seqdb.Match{SeqID: bm.SeqID, Seq: bm.Seq, Start: bm.Start, End: bm.End, Distance: bm.Distance})
		case wire.TBatchItemDone:
			bd, err := wire.DecodeBatchItemDone(body)
			if err != nil {
				return nil, agg, c.fail(ctx, err)
			}
			if bd.ID < 0 || bd.ID >= len(results) {
				return nil, agg, c.fail(ctx, fmt.Errorf("batch done for unknown item %d", bd.ID))
			}
			results[bd.ID].Stats = bd.Stats
			settled[bd.ID] = true
		case wire.TBatchItemError:
			be, err := wire.DecodeBatchItemError(body)
			if err != nil {
				return nil, agg, c.fail(ctx, err)
			}
			if be.ID < 0 || be.ID >= len(results) {
				return nil, agg, c.fail(ctx, fmt.Errorf("batch error for unknown item %d", be.ID))
			}
			results[be.ID].Err = &wire.Error{Code: be.Code, Msg: be.Msg}
			settled[be.ID] = true
		case wire.TDone:
			d, err := wire.DecodeDone(body)
			if err != nil {
				return nil, agg, c.fail(ctx, err)
			}
			c.finish()
			for i, ok := range settled {
				if !ok && results[i].Err == nil {
					results[i].Err = fmt.Errorf("client: batch item %d never settled", i)
				}
			}
			// An unsharded server streams range-search answers in traversal
			// order; normalize every item to the (sequence, start, end)
			// order the in-process API returns. KNN items arrive already
			// sorted, so re-sorting them is a deterministic no-op.
			for i := range results {
				sortMatches(results[i].Matches)
			}
			return results, d.Stats, nil
		case wire.TError:
			e, err := wire.DecodeError(body)
			if err != nil {
				return nil, agg, c.fail(ctx, err)
			}
			c.finish()
			return nil, agg, e
		default:
			return nil, agg, c.fail(ctx, fmt.Errorf("unexpected frame type %#x in batch stream", t))
		}
	}
}

// Shards returns the shard topology of a mounted DB: each shard's slice of
// the global sequence numbering. An unsharded DB reports a single range.
func (c *Client) Shards(ctx context.Context, db string) ([]seqdb.ShardRange, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.begin(ctx); err != nil {
		return nil, err
	}
	req := wire.ShardsReq{DB: db}
	if err := c.send(ctx, wire.TShards, req.Encode(nil)); err != nil {
		return nil, err
	}
	t, body, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, c.fail(ctx, err)
	}
	switch t {
	case wire.TShardsResp:
		resp, err := wire.DecodeShardsResp(body)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		c.finish()
		out := make([]seqdb.ShardRange, len(resp.Ranges))
		for i, sr := range resp.Ranges {
			out[i] = seqdb.ShardRange{Start: sr.Start, Count: sr.Count}
		}
		return out, nil
	case wire.TError:
		e, err := wire.DecodeError(body)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		c.finish()
		return nil, e
	}
	return nil, c.fail(ctx, fmt.Errorf("unexpected frame type %#x", t))
}
