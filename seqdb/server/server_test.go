package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"twsearch/internal/wire"
	"twsearch/seqdb"
	"twsearch/seqdb/client"
)

// leakCheck snapshots the goroutine count and registers a cleanup that
// fails the test if, after everything else tears down, more goroutines
// remain than before. Registered first so it runs last.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, n, buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// newTestDB builds a deterministic database with one sparse max-entropy
// index, the configuration the paper recommends.
func newTestDB(t *testing.T) *seqdb.DB {
	t.Helper()
	db, err := seqdb.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		vals := make([]float64, 80)
		for j := range vals {
			vals[j] = 5*math.Sin(float64(j)/7+float64(i)) + float64(i%5)
		}
		if err := db.Add(fmt.Sprintf("seq-%02d", i), vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex("fast", seqdb.IndexSpec{
		Method: seqdb.MethodMaxEntropy, Categories: 10, Sparse: true,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// start runs the server on a loopback port and tears it down at test end,
// asserting the drain is clean.
func start(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-errCh; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return ln.Addr().String()
}

func testQuery(db *seqdb.DB, seq string, lo, hi int) []float64 {
	vals := db.Values(seq)
	return append([]float64(nil), vals[lo:hi]...)
}

// matchesBitIdentical reports whether two answer sets are byte-identical:
// same order, same positions, same float64 bits.
func matchesBitIdentical(a, b []seqdb.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].SeqID != b[i].SeqID || a[i].Seq != b[i].Seq ||
			a[i].Start != b[i].Start || a[i].End != b[i].End ||
			math.Float64bits(a[i].Distance) != math.Float64bits(b[i].Distance) {
			return false
		}
	}
	return true
}

func TestServerSearchMatchesInProcess(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{})
	if err := s.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	addr := start(t, s)

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	q := testQuery(db, "seq-03", 10, 30)
	const eps = 4.0

	want, wantStats, err := db.Search("fast", q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test query found no matches; pick a better query")
	}
	got, gotStats, err := c.Search(ctx, "main", "fast", q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesBitIdentical(want, got) {
		t.Fatalf("server answers differ from in-process:\n got %v\nwant %v", got, want)
	}
	if gotStats.Answers != wantStats.Answers {
		t.Fatalf("answer counts differ: %d != %d", gotStats.Answers, wantStats.Answers)
	}

	// The empty DB name resolves to the single mounted database.
	got2, _, err := c.Search(ctx, "", "fast", q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesBitIdentical(want, got2) {
		t.Fatal("empty-db-name search differs")
	}

	// Scan and KNN mirror their in-process counterparts too.
	wantScan, _, err := db.SeqScan(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	gotScan, _, err := c.SeqScan(ctx, "main", q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesBitIdentical(wantScan, gotScan) {
		t.Fatal("server scan differs from in-process scan")
	}
	wantKNN, _, err := db.SearchKNN("fast", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotKNN, _, err := c.SearchKNN(ctx, "main", "fast", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesBitIdentical(wantKNN, gotKNN) {
		t.Fatal("server knn differs from in-process knn")
	}

	// Stats and index listings round-trip.
	st, err := c.Stats(ctx, "main")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, db.Stats()) {
		t.Fatalf("stats differ: %+v != %+v", st, db.Stats())
	}
	infos, err := c.ListIndexes(ctx, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "fast" || !infos[0].Spec.Sparse {
		t.Fatalf("index listing wrong: %+v", infos)
	}

	m := s.Metrics()
	if m.Requests == 0 || m.PerOp["search"] != 2 || m.MatchesStreamed == 0 {
		t.Fatalf("metrics not recording: %+v", m)
	}
	if m.P50 <= 0 || m.P99 < m.P50 {
		t.Fatalf("latency percentiles wrong: p50=%v p99=%v", m.P50, m.P99)
	}
}

func TestServerErrorsAreTyped(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{})
	if err := s.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	addr := start(t, s)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	q := testQuery(db, "seq-00", 0, 10)

	_, _, err = c.Search(ctx, "nope", "fast", q, 1)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeNotFound {
		t.Fatalf("unknown db error = %v, want not-found", err)
	}
	_, _, err = c.Search(ctx, "main", "nope", q, 1)
	if !errors.As(err, &we) || we.Code != wire.CodeNotFound {
		t.Fatalf("unknown index error = %v, want not-found", err)
	}
	// An invalid query is a bad request, and the connection survives it.
	_, _, err = c.Search(ctx, "main", "fast", nil, 1)
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("empty query error = %v, want bad-request", err)
	}
	if _, _, err := c.Search(ctx, "main", "fast", q, 1); err != nil {
		t.Fatalf("connection did not survive request errors: %v", err)
	}
}

func TestServerDeadline(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{SearchTimeout: time.Nanosecond})
	if err := s.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	addr := start(t, s)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := testQuery(db, "seq-01", 0, 20)
	_, _, err = c.Search(context.Background(), "main", "fast", q, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeDeadline {
		t.Fatalf("err = %v, want typed wire deadline error", err)
	}
	if m := s.Metrics(); m.Deadlines != 1 {
		t.Fatalf("deadline not counted: %+v", m)
	}

	// A client-side deadline that has already passed fails before sending.
	expired, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, _, err := c.Search(expired, "main", "fast", q, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("client-side deadline err = %v", err)
	}
}

func TestServerOverloadFastFail(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{MaxInFlight: 1})
	if err := s.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-release
	}
	addr := start(t, s)
	q := testQuery(db, "seq-02", 5, 25)

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := c1.Search(context.Background(), "main", "fast", q, 3)
		firstDone <- err
	}()
	<-admitted // the only slot is now held

	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, _, err = c2.Search(context.Background(), "main", "fast", q, 3)
	if !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("second search err = %v, want ErrOverloaded", err)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("admitted search failed: %v", err)
	}
	if m := s.Metrics(); m.Overloaded != 1 {
		t.Fatalf("overload not counted: %+v", m)
	}
}

// TestServerConcurrentClients is the acceptance bar: 32 concurrent
// connections streaming matches under -race, every one byte-identical to
// the in-process answer.
func TestServerConcurrentClients(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{MaxInFlight: 64})
	if err := s.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	addr := start(t, s)

	type job struct {
		q   []float64
		eps float64
	}
	jobs := make([]job, 8)
	wants := make([][]seqdb.Match, len(jobs))
	for i := range jobs {
		seq := fmt.Sprintf("seq-%02d", (i*3)%20)
		jobs[i] = job{q: testQuery(db, seq, i, 20+i), eps: 3 + float64(i%3)}
		want, _, err := db.Search("fast", jobs[i].q, jobs[i].eps)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
	}

	const clients = 32
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			for round := 0; round < 3; round++ {
				j := (w + round) % len(jobs)
				got, _, err := c.Search(context.Background(), "main", "fast", jobs[j].q, jobs[j].eps)
				if err != nil {
					errs[w] = fmt.Errorf("client %d round %d: %w", w, round, err)
					return
				}
				if !matchesBitIdentical(wants[j], got) {
					errs[w] = fmt.Errorf("client %d round %d: answers differ", w, round)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.ConnsAccepted < clients {
		t.Fatalf("accepted %d conns, want >= %d", m.ConnsAccepted, clients)
	}
	if m.Overloaded != 0 {
		t.Fatalf("unexpected overloads under capacity: %+v", m)
	}
}

// TestServerShutdownDrainsInFlight pins the drain sequence: a search is
// in flight when Shutdown begins; the request is canceled, answered with a
// typed shutdown error, and Shutdown joins every goroutine.
func TestServerShutdownDrainsInFlight(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{})
	if err := s.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := testQuery(db, "seq-04", 0, 20)
	searchErr := make(chan error, 1)
	go func() {
		_, _, err := c.Search(context.Background(), "main", "fast", q, 3)
		searchErr <- err
	}()
	<-admitted // the search is admitted and in flight

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Give Shutdown a moment to cancel the drain context, then let the
	// in-flight request proceed into the (now canceled) search.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	err = <-searchErr
	if !errors.Is(err, wire.ErrShutdown) && err == nil {
		t.Fatalf("in-flight search err = %v, want shutdown error", err)
	}

	// After shutdown, new Serve calls and connections are refused.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(ln2); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after shutdown = %v, want ErrServerClosed", err)
	}
}

// TestClientEarlyStopAndReconnect exercises the streaming visitor's early
// stop (which drops the connection by design) and the transparent redial
// on the next request.
func TestClientEarlyStopAndReconnect(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{})
	if err := s.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	addr := start(t, s)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := testQuery(db, "seq-03", 10, 30)
	want, _, err := db.Search("fast", q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 2 {
		t.Fatalf("need >= 2 matches for an early stop, have %d", len(want))
	}
	seen := 0
	if _, err := c.SearchVisit(context.Background(), "main", "fast", q, 4, func(seqdb.Match) bool {
		seen++
		return seen < 2
	}); err != nil {
		t.Fatalf("early-stopped visit: %v", err)
	}
	if seen != 2 {
		t.Fatalf("visitor saw %d matches, want 2", seen)
	}
	// The stop dropped the connection; the next call redials and works.
	got, _, err := c.Search(context.Background(), "main", "fast", q, 4)
	if err != nil {
		t.Fatalf("search after early stop: %v", err)
	}
	if !matchesBitIdentical(want, got) {
		t.Fatal("post-reconnect answers differ")
	}
}

// TestServerParallelHint: a request-level parallelism hint, capped by the
// server's MaxQueryParallelism, returns answers byte-identical to the serial
// in-process search — for range search and KNN — and a hint against a
// serial-only server (the zero config) is silently ignored.
func TestServerParallelHint(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{MaxQueryParallelism: 3})
	if err := s.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	addr := start(t, s)

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	q := testQuery(db, "seq-03", 10, 30)
	const eps = 4.0

	want, wantStats, err := db.Search("fast", q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test query found no matches; pick a better query")
	}
	wantKNN, _, err := db.SearchKNN("fast", q, 5)
	if err != nil {
		t.Fatal(err)
	}

	// A hint above the cap (8 > 3) is capped server-side, never rejected.
	for _, par := range []int{2, 8} {
		opts := seqdb.SearchOptions{Parallelism: par}
		got, gotStats, err := c.SearchWith(ctx, "main", "fast", q, eps, opts)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if !matchesBitIdentical(want, got) {
			t.Fatalf("par=%d: parallel server answers differ from serial in-process", par)
		}
		if gotStats.Answers != wantStats.Answers || gotStats.FilterCells != wantStats.FilterCells {
			t.Fatalf("par=%d: exact stats differ: answers %d/%d cells %d/%d", par,
				gotStats.Answers, wantStats.Answers, gotStats.FilterCells, wantStats.FilterCells)
		}
		gotKNN, _, err := c.SearchKNNWith(ctx, "main", "fast", q, 5, opts)
		if err != nil {
			t.Fatalf("par=%d knn: %v", par, err)
		}
		if !matchesBitIdentical(wantKNN, gotKNN) {
			t.Fatalf("par=%d: parallel server KNN differs from serial in-process", par)
		}
	}

	// Serial-only server: the hint is capped to 0 (serial) and the request
	// still succeeds with identical answers.
	s2 := New(Config{})
	if err := s2.AddDB("main", db); err != nil {
		t.Fatal(err)
	}
	addr2 := start(t, s2)
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, _, err := c2.SearchWith(ctx, "main", "fast", q, eps, seqdb.SearchOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !matchesBitIdentical(want, got) {
		t.Fatal("serial-only server with a hint differs from in-process")
	}
}
