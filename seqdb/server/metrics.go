package server

import (
	"errors"
	"sort"
	"sync"
	"time"

	"twsearch/internal/wire"
	"twsearch/seqdb"
)

// latWindow is how many recent request latencies feed the percentile
// estimates: a fixed ring, so the snapshot reflects current behavior and
// the server's memory stays constant under any request volume.
const latWindow = 1024

// Metrics is an expvar-style snapshot of the server's counters since
// start. Percentiles are over the last latWindow requests.
type Metrics struct {
	// ConnsAccepted counts accepted connections; ActiveConns is the number
	// currently open.
	ConnsAccepted uint64
	ActiveConns   int
	// Requests counts every request frame; PerOp splits it by operation
	// ("search", "knn", "scan", "stats", "list-indexes", "frame-0x??").
	Requests uint64
	PerOp    map[string]uint64
	// MatchesStreamed counts answer frames sent across all requests.
	MatchesStreamed uint64
	// Errors counts requests answered with an error frame; Overloaded and
	// Deadlines break out the two admission/deadline outcomes.
	Errors     uint64
	Overloaded uint64
	Deadlines  uint64
	// P50/P99 are request latency percentiles over the recent window
	// (zero until the first request completes).
	P50, P99 time.Duration
	// SearchStats aggregates the engine's work counters (nodes visited,
	// table cells, candidates, ...) over every counted search.
	SearchStats seqdb.SearchStats
}

// metrics is the server's internal accumulator.
type metrics struct {
	mu         sync.Mutex
	accepted   uint64
	active     int
	requests   uint64
	perOp      map[string]uint64
	matches    uint64
	errCount   uint64
	overloaded uint64
	deadlines  uint64
	agg        seqdb.SearchStats
	lat        [latWindow]time.Duration
	latTotal   uint64 // latencies ever recorded; ring index = latTotal % latWindow
}

func (m *metrics) connAccepted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accepted++
	m.active++
}

func (m *metrics) connClosed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active--
}

// record accumulates one finished request.
func (m *metrics) record(res reqResult, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if m.perOp == nil {
		m.perOp = map[string]uint64{}
	}
	m.perOp[res.op]++
	m.matches += uint64(res.matches)
	if res.counted {
		m.agg.Add(res.stats)
	}
	if res.err != nil {
		m.errCount++
		if errors.Is(res.err, wire.ErrOverloaded) {
			m.overloaded++
		}
		var we *wire.Error
		if errors.As(res.err, &we) && we.Code == wire.CodeDeadline {
			m.deadlines++
		}
	}
	m.lat[m.latTotal%latWindow] = dur
	m.latTotal++
}

// snapshot copies the counters out under the lock and derives the
// percentiles from the latency ring.
func (m *metrics) snapshot() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		ConnsAccepted:   m.accepted,
		ActiveConns:     m.active,
		Requests:        m.requests,
		PerOp:           make(map[string]uint64, len(m.perOp)),
		MatchesStreamed: m.matches,
		Errors:          m.errCount,
		Overloaded:      m.overloaded,
		Deadlines:       m.deadlines,
		SearchStats:     m.agg,
	}
	for op, n := range m.perOp {
		out.PerOp[op] = n
	}
	n := int(m.latTotal)
	if n > latWindow {
		n = latWindow
	}
	if n > 0 {
		window := make([]time.Duration, n)
		copy(window, m.lat[:n])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		out.P50 = window[(n-1)*50/100]
		out.P99 = window[(n-1)*99/100]
	}
	return out
}

// Metrics returns the server's current counters.
func (s *Server) Metrics() Metrics {
	return s.met.snapshot()
}
