// Package server hosts seqdb databases behind a TCP listener speaking the
// internal/wire protocol — the "load once, search many" daemon behind
// cmd/twsearchd. One Server holds one or more open DBs, so the index
// handles and buffer pools warmed by the first queries are shared by every
// following one instead of being rebuilt per process.
//
// The service discipline, in order of a request's life:
//
//   - Admission: search-shaped requests (search, knn, scan) pass a bounded
//     semaphore of Config.MaxInFlight slots. A full semaphore fails fast
//     with wire.ErrOverloaded rather than queueing — the client owns the
//     retry policy, the server's latency stays bounded.
//   - Deadlines: each admitted request runs under a context bounded by the
//     tighter of the server's Config.SearchTimeout and the client's own
//     timeout hint; cancellation aborts the search through the engine's
//     early-stop path and the deadline is mirrored onto the connection so
//     a blocked write fails with it too.
//   - Streaming: answers flow to the client as individual match frames as
//     the traversal finds them; an answer set is never materialized
//     server-side for range searches.
//   - Shutdown: Shutdown stops accepting, closes the listeners, cancels
//     every in-flight search, nudges idle connections, and joins every
//     goroutine the server started before returning.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"twsearch/internal/wire"
	"twsearch/seqdb"
)

// Config tunes a Server. The zero value is serviceable: 16 in-flight
// searches, no search timeout, 5-minute idle connections, no logging.
type Config struct {
	// MaxInFlight bounds concurrently running searches (the admission
	// semaphore). <= 0 means 16.
	MaxInFlight int
	// SearchTimeout is the server-side ceiling on one search; 0 disables
	// it. A client may only tighten it, never extend it.
	SearchTimeout time.Duration
	// IdleTimeout closes connections with no request activity; <= 0 means
	// 5 minutes.
	IdleTimeout time.Duration
	// MaxQueryParallelism caps the per-request parallelism hint: one search
	// may use at most this many worker goroutines. <= 0 means every search
	// runs serial regardless of the client's hint — intra-query parallelism
	// trades per-query latency for machine-wide throughput, so turning it on
	// is the operator's call, not the client's.
	MaxQueryParallelism int
	// Logf, when set, receives one access-log line per request and
	// connection event (printf-style).
	Logf func(format string, args ...any)
}

const (
	defaultMaxInFlight = 16
	defaultIdleTimeout = 5 * time.Minute
	handshakeTimeout   = 10 * time.Second
)

// ErrServerClosed is returned by Serve after Shutdown begins, mirroring
// net/http's convention.
var ErrServerClosed = errors.New("server: closed")

// Server hosts open DBs behind wire-protocol listeners. Create one with
// New, attach databases with AddDB, then run Serve per listener.
type Server struct {
	cfg Config
	sem chan struct{}

	// ctx is the drain context: every request context descends from it, so
	// one cancel aborts all in-flight searches.
	ctx    context.Context
	cancel context.CancelFunc

	// mu guards dbs, lns, conns and draining. Never held across I/O.
	mu       sync.Mutex
	dbs      map[string]Source
	lns      map[net.Listener]struct{}
	conns    map[net.Conn]struct{}
	draining bool

	// serveWG counts Serve calls; each Serve joins its own connection
	// goroutines before returning, so waiting on it joins everything.
	serveWG sync.WaitGroup

	met metrics

	// testHookAdmitted, when set, runs while a search request holds an
	// admission slot. Tests use it to hold the semaphore full at a known
	// point; production code never sets it.
	testHookAdmitted func()
}

// New creates a Server with no databases attached.
//
//twlint:ctx-root server-lifetime root: every request ctx derives from it and Shutdown cancels it
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = defaultIdleTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxInFlight),
		ctx:    ctx,
		cancel: cancel,
		dbs:    map[string]Source{},
		lns:    map[net.Listener]struct{}{},
		conns:  map[net.Conn]struct{}{},
	}
}

// AddDB mounts an open unsharded database under name. The server does not
// own the DB: closing it remains the caller's job, after Shutdown returns.
func (s *Server) AddDB(name string, db *seqdb.DB) error {
	return s.AddSource(name, dbSource{db})
}

// AddSharded mounts an open sharded database under name; searches against
// it fan out over its shards. Ownership stays with the caller, as with
// AddDB.
func (s *Server) AddSharded(name string, db *seqdb.ShardedDB) error {
	return s.AddSource(name, shardedSource{db})
}

// AddSource mounts any Source — including a Router spanning local
// directories and remote daemons — under name.
func (s *Server) AddSource(name string, src Source) error {
	if name == "" {
		return errors.New("server: empty db name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrServerClosed
	}
	if _, ok := s.dbs[name]; ok {
		return fmt.Errorf("server: db %q already mounted", name)
	}
	s.dbs[name] = src
	return nil
}

// DBNames lists the mounted database names, sorted.
func (s *Server) DBNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.dbs))
	for name := range s.dbs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupDB resolves a request's database name. The empty name is a
// convenience that resolves iff exactly one DB is mounted.
func (s *Server) lookupDB(name string) (Source, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		if len(s.dbs) == 1 {
			for _, db := range s.dbs {
				return db, nil
			}
		}
		return nil, &wire.Error{Code: wire.CodeNotFound,
			Msg: fmt.Sprintf("empty db name is ambiguous with %d mounted databases", len(s.dbs))}
	}
	db, ok := s.dbs[name]
	if !ok {
		return nil, &wire.Error{Code: wire.CodeNotFound, Msg: fmt.Sprintf("no database %q", name)}
	}
	return db, nil
}

// Serve accepts connections on ln until Shutdown (returning
// ErrServerClosed) or a listener failure (returning it). Every connection
// goroutine it starts is joined before it returns.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.serveWG.Add(1)
	s.mu.Unlock()
	defer s.serveWG.Done()

	var wg sync.WaitGroup
	var retErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				retErr = ErrServerClosed
			} else {
				retErr = err
			}
			break
		}
		if !s.track(conn) {
			// Shutdown began between Accept and here; the listener is
			// closed, so the next Accept fails and the loop ends.
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
	wg.Wait()
	s.mu.Lock()
	delete(s.lns, ln)
	s.mu.Unlock()
	return retErr
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// track registers a live connection; it refuses during drain so Shutdown's
// connection sweep cannot miss one registered after it.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[conn] = struct{}{}
	s.met.connAccepted()
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.met.connClosed()
}

// Shutdown drains the server: it stops accepting, cancels in-flight
// searches (they answer with a shutdown error frame), unblocks idle
// connection reads, and waits for every goroutine to exit. If ctx expires
// first, remaining connections are force-closed; the wait still completes
// before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginShutdown()
	done := make(chan struct{})
	go func() {
		s.serveWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceCloseConns()
		<-done
		return ctx.Err()
	}
}

// beginShutdown flips the server into draining mode exactly once: no new
// listeners, connections or requests; in-flight work is canceled.
func (s *Server) beginShutdown() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()

	s.cancel()
	for _, ln := range lns {
		ln.Close()
	}
	// Unblock reads waiting for a next request; handlers mid-response keep
	// their write path and finish their (aborted) reply before exiting.
	now := time.Now()
	for _, conn := range conns {
		conn.SetReadDeadline(now)
	}
}

func (s *Server) forceCloseConns() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// serveConn runs one connection: handshake, then a request loop until the
// peer hangs up, a fatal I/O error, or drain.
func (s *Server) serveConn(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return
	}
	if _, err := wire.ReadHello(br); err != nil {
		s.logf("conn %s: handshake: %v", conn.RemoteAddr(), err)
		return
	}
	if err := wire.WriteHello(bw); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return
	}

	for {
		if s.ctx.Err() != nil {
			return // draining: stop between requests
		}
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return
		}
		t, body, err := wire.ReadFrame(br)
		if err != nil {
			return // clean close, idle timeout, or drain nudge
		}
		if err := s.handleRequest(conn, bw, t, body); err != nil {
			s.logf("conn %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// reqResult carries one request's accounting to the access log and the
// metrics recorder. err is the request-level outcome already reported to
// the client; connection-fatal I/O errors travel separately.
type reqResult struct {
	op      string
	db      string
	index   string
	matches int
	stats   seqdb.SearchStats
	counted bool // stats carries real search counters
	err     error
}

// handleRequest dispatches one frame, flushes the response, and records
// the outcome. The returned error is connection-fatal.
func (s *Server) handleRequest(conn net.Conn, bw *bufio.Writer, t byte, body []byte) error {
	started := time.Now()
	var res reqResult
	var ioErr error
	switch t {
	case wire.TSearch:
		res, ioErr = s.handleSearch(conn, bw, body)
	case wire.TKNN:
		res, ioErr = s.handleKNN(conn, bw, body)
	case wire.TScan:
		res, ioErr = s.handleScan(conn, bw, body)
	case wire.TStats:
		res, ioErr = s.handleStats(bw, body)
	case wire.TListIndexes:
		res, ioErr = s.handleListIndexes(bw, body)
	case wire.TBatch:
		res, ioErr = s.handleBatch(conn, bw, body)
	case wire.TShards:
		res, ioErr = s.handleShards(bw, body)
	default:
		res.op = fmt.Sprintf("frame-%#x", t)
		res.err = &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unknown frame type %#x", t)}
		ioErr = writeError(bw, res.err)
	}
	if ioErr == nil {
		ioErr = bw.Flush()
	}
	dur := time.Since(started)
	s.met.record(res, dur)
	s.logf("access remote=%s op=%s db=%q index=%q dur=%v matches=%d err=%v",
		conn.RemoteAddr(), res.op, res.db, res.index, dur.Round(time.Microsecond), res.matches, res.err)
	return ioErr
}

// writeError reports a request-level failure to the client.
func writeError(bw *bufio.Writer, err error) error {
	return wire.WriteFrame(bw, wire.TError, wire.EncodeError(nil, err))
}

// searchOpts folds a request's parallelism hint against the server cap.
func (s *Server) searchOpts(hint int) seqdb.SearchOptions {
	par := hint
	if par > s.cfg.MaxQueryParallelism {
		par = s.cfg.MaxQueryParallelism
	}
	return seqdb.SearchOptions{Parallelism: par}
}

// admit claims an admission slot, or fails fast when all are in use.
func (s *Server) admit() (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		return nil, false
	}
}

// requestCtx derives the context one admitted search runs under: the drain
// context, bounded by the tighter of the server ceiling and the client's
// hint. Any resulting deadline is mirrored onto the connection so a write
// to a stalled client fails with it; cleanup clears it again.
func (s *Server) requestCtx(conn net.Conn, hint time.Duration) (context.Context, func()) {
	limit := s.cfg.SearchTimeout
	if hint > 0 && (limit <= 0 || hint < limit) {
		limit = hint
	}
	if limit <= 0 {
		return s.ctx, func() {}
	}
	ctx, cancel := context.WithTimeout(s.ctx, limit)
	conn.SetWriteDeadline(time.Now().Add(limit))
	return ctx, func() {
		cancel()
		conn.SetWriteDeadline(time.Time{})
	}
}

func (s *Server) handleSearch(conn net.Conn, bw *bufio.Writer, body []byte) (reqResult, error) {
	res := reqResult{op: "search"}
	req, err := wire.DecodeSearchReq(body)
	if err != nil {
		res.err = &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
		return res, writeError(bw, res.err)
	}
	res.db, res.index = req.DB, req.Index
	db, err := s.lookupDB(req.DB)
	if err != nil {
		res.err = err
		return res, writeError(bw, err)
	}
	release, ok := s.admit()
	if !ok {
		res.err = wire.ErrOverloaded
		return res, writeError(bw, res.err)
	}
	defer release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	ctx, cleanup := s.requestCtx(conn, req.Timeout)
	defer cleanup()

	var ioErr error
	buf := make([]byte, 0, 256)
	stats, searchErr := db.SearchVisitWith(ctx, req.Index, req.Query, req.Eps, func(m seqdb.Match) bool {
		buf = buf[:0]
		wm := wire.Match{SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance}
		buf = wm.Encode(buf)
		if err := wire.WriteFrame(bw, wire.TMatch, buf); err != nil {
			ioErr = err
			return false
		}
		res.matches++
		return true
	}, s.searchOpts(req.Parallelism))
	res.stats, res.counted = stats, true
	if ioErr != nil {
		return res, ioErr
	}
	if searchErr != nil {
		res.err = classify(searchErr)
		return res, writeError(bw, res.err)
	}
	done := wire.Done{Stats: stats}
	return res, wire.WriteFrame(bw, wire.TDone, done.Encode(nil))
}

func (s *Server) handleKNN(conn net.Conn, bw *bufio.Writer, body []byte) (reqResult, error) {
	res := reqResult{op: "knn"}
	req, err := wire.DecodeKNNReq(body)
	if err != nil {
		res.err = &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
		return res, writeError(bw, res.err)
	}
	res.db, res.index = req.DB, req.Index
	db, err := s.lookupDB(req.DB)
	if err != nil {
		res.err = err
		return res, writeError(bw, err)
	}
	release, ok := s.admit()
	if !ok {
		res.err = wire.ErrOverloaded
		return res, writeError(bw, res.err)
	}
	defer release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	ctx, cleanup := s.requestCtx(conn, req.Timeout)
	defer cleanup()

	ms, stats, err := db.SearchKNNWith(ctx, req.Index, req.Query, req.K, s.searchOpts(req.Parallelism))
	res.stats, res.counted = stats, true
	if err != nil {
		res.err = classify(err)
		return res, writeError(bw, res.err)
	}
	return s.streamMatches(bw, &res, ms, stats)
}

func (s *Server) handleScan(conn net.Conn, bw *bufio.Writer, body []byte) (reqResult, error) {
	res := reqResult{op: "scan"}
	req, err := wire.DecodeScanReq(body)
	if err != nil {
		res.err = &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
		return res, writeError(bw, res.err)
	}
	res.db = req.DB
	db, err := s.lookupDB(req.DB)
	if err != nil {
		res.err = err
		return res, writeError(bw, err)
	}
	release, ok := s.admit()
	if !ok {
		res.err = wire.ErrOverloaded
		return res, writeError(bw, res.err)
	}
	defer release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	ctx, cleanup := s.requestCtx(conn, req.Timeout)
	defer cleanup()

	ms, stats, err := db.SeqScanCtx(ctx, req.Query, req.Eps)
	res.stats, res.counted = stats, true
	if err != nil {
		res.err = classify(err)
		return res, writeError(bw, res.err)
	}
	return s.streamMatches(bw, &res, ms, stats)
}

// streamMatches writes a materialized answer set as the same match-frame
// stream a visitor search produces, then the done frame.
func (s *Server) streamMatches(bw *bufio.Writer, res *reqResult, ms []seqdb.Match, stats seqdb.SearchStats) (reqResult, error) {
	buf := make([]byte, 0, 256)
	for _, m := range ms {
		buf = buf[:0]
		wm := wire.Match{SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance}
		buf = wm.Encode(buf)
		if err := wire.WriteFrame(bw, wire.TMatch, buf); err != nil {
			return *res, err
		}
		res.matches++
	}
	done := wire.Done{Stats: stats}
	return *res, wire.WriteFrame(bw, wire.TDone, done.Encode(nil))
}

func (s *Server) handleStats(bw *bufio.Writer, body []byte) (reqResult, error) {
	res := reqResult{op: "stats"}
	req, err := wire.DecodeStatsReq(body)
	if err != nil {
		res.err = &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
		return res, writeError(bw, res.err)
	}
	res.db = req.DB
	db, err := s.lookupDB(req.DB)
	if err != nil {
		res.err = err
		return res, writeError(bw, err)
	}
	stats, pools, err := db.SourceStats(s.ctx)
	if err != nil {
		res.err = classify(err)
		return res, writeError(bw, res.err)
	}
	resp := wire.StatsResp{Stats: stats}
	for _, p := range pools {
		info := wire.PoolInfo{Index: p.Index, Shards: make([]wire.PoolShard, len(p.Shards))}
		for i, sh := range p.Shards {
			info.Shards[i] = wire.PoolShard{Hits: sh.Hits, Misses: sh.Misses, Evictions: sh.Evictions}
		}
		resp.Pools = append(resp.Pools, info)
	}
	return res, wire.WriteFrame(bw, wire.TStatsResp, resp.Encode(nil))
}

func (s *Server) handleListIndexes(bw *bufio.Writer, body []byte) (reqResult, error) {
	res := reqResult{op: "list-indexes"}
	req, err := wire.DecodeListIndexesReq(body)
	if err != nil {
		res.err = &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
		return res, writeError(bw, res.err)
	}
	res.db = req.DB
	db, err := s.lookupDB(req.DB)
	if err != nil {
		res.err = err
		return res, writeError(bw, err)
	}
	infos, err := db.SourceIndexes(s.ctx)
	if err != nil {
		res.err = classify(err)
		return res, writeError(bw, res.err)
	}
	var resp wire.IndexesResp
	for _, info := range infos {
		resp.Indexes = append(resp.Indexes, wire.IndexInfo{
			Name:         info.Name,
			Method:       string(info.Spec.Method),
			Categories:   info.Spec.Categories,
			Sparse:       info.Spec.Sparse,
			Window:       info.Spec.Window,
			MinAnswerLen: info.Spec.MinAnswerLen,
			SizeBytes:    info.SizeBytes,
			Leaves:       info.Leaves,
			Nodes:        info.Nodes,
		})
	}
	return res, wire.WriteFrame(bw, wire.TIndexes, resp.Encode(nil))
}

// classify folds a search error into its wire shape: lookup failures are
// not-found, context outcomes keep their deadline/shutdown meaning, a
// scatter-gather partial failure becomes shard-unavailable carrying the
// answered shards, and anything else is a bad request from the client's
// point of view (the search engine validates inputs, it does not fail
// spontaneously). The context cases run first even for partial failures: a
// request whose deadline expired mid-fan-out is a deadline outcome, not a
// shard outage.
func classify(err error) error {
	switch {
	case errors.Is(err, seqdb.ErrNoIndex):
		return &wire.Error{Code: wire.CodeNotFound, Msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &wire.Error{Code: wire.CodeDeadline, Msg: err.Error()}
	case errors.Is(err, context.Canceled):
		return &wire.Error{Code: wire.CodeShutdown, Msg: err.Error()}
	}
	// The partial-failure check precedes the generic typed-error
	// passthrough: a remote leg's own wire error (say, overloaded) wrapped
	// in a PartialError describes one shard, while this request's outcome
	// is "the search lost shards".
	var pe *seqdb.PartialError
	if errors.As(err, &pe) {
		return &wire.Error{
			Code:     wire.CodeShardUnavailable,
			Msg:      err.Error(),
			Answered: append([]int(nil), pe.Answered...),
		}
	}
	var we *wire.Error
	if errors.As(err, &we) {
		return we
	}
	return &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
}
