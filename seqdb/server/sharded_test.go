package server

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"twsearch/internal/wire"
	"twsearch/seqdb"
	"twsearch/seqdb/client"
)

// newSharded partitions db's data into n shards and builds the same "fast"
// index on every shard.
func newSharded(t *testing.T, db *seqdb.DB, n int) *seqdb.ShardedDB {
	t.Helper()
	sdb, err := db.PartitionInto(filepath.Join(t.TempDir(), "sharded"), n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	if err := sdb.BuildIndex("fast", seqdb.IndexSpec{
		Method: seqdb.MethodMaxEntropy, Categories: 10, Sparse: true,
	}); err != nil {
		t.Fatal(err)
	}
	return sdb
}

// TestServerShardedByteIdentical is the acceptance gate at the serving
// tier: a sharded mount must answer every RPC bit-identically to the
// unsharded in-process search, at several shard counts.
func TestServerShardedByteIdentical(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{})
	if err := s.AddDB("flat", db); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 5} {
		if err := s.AddSharded(names[n], newSharded(t, db, n)); err != nil {
			t.Fatal(err)
		}
	}
	addr := start(t, s)

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	q := testQuery(db, "seq-03", 10, 30)
	const eps = 4.0
	want, _, err := db.Search("fast", q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test query found no matches; pick a better query")
	}
	wantKNN, _, err := db.SearchKNN("fast", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantScan, _, err := db.SeqScan(q, eps)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 3, 5} {
		got, _, err := c.Search(ctx, names[n], "fast", q, eps)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if !matchesBitIdentical(want, got) {
			t.Errorf("shards=%d: Search differs from unsharded in-process", n)
		}
		gotKNN, _, err := c.SearchKNN(ctx, names[n], "fast", q, 5)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if !matchesBitIdentical(wantKNN, gotKNN) {
			t.Errorf("shards=%d: SearchKNN differs from unsharded in-process", n)
		}
		gotScan, _, err := c.SeqScan(ctx, names[n], q, eps)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if !matchesBitIdentical(wantScan, gotScan) {
			t.Errorf("shards=%d: SeqScan differs from unsharded in-process", n)
		}
		// Topology RPC: ranges must tile [0, Len).
		ranges, err := c.Shards(ctx, names[n])
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if len(ranges) != n {
			t.Errorf("shards=%d: topology reports %d ranges", n, len(ranges))
		}
		next := 0
		for _, r := range ranges {
			if r.Start != next {
				t.Errorf("shards=%d: ranges do not tile: %v", n, ranges)
				break
			}
			next = r.Start + r.Count
		}
		if next != db.Len() {
			t.Errorf("shards=%d: ranges cover %d sequences, want %d", n, next, db.Len())
		}
	}

	// The unsharded mount answers the topology RPC with one full range.
	ranges, err := c.Shards(ctx, "flat")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ranges, []seqdb.ShardRange{{Start: 0, Count: db.Len()}}) {
		t.Errorf("flat topology = %v", ranges)
	}
}

// names maps shard counts to mount names for the sharded test server.
var names = map[int]string{1: "sh1", 2: "sh2", 3: "sh3", 5: "sh5"}

// TestServerBatch exercises the v4 batch RPC end to end: mixed search and
// k-NN items in one round-trip, per-item stats, a failing item that does
// not sink the batch, and bit-identical results against both a flat and a
// sharded mount.
func TestServerBatch(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{})
	if err := s.AddDB("flat", db); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSharded("sh3", newSharded(t, db, 3)); err != nil {
		t.Fatal(err)
	}
	addr := start(t, s)

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	q1 := testQuery(db, "seq-03", 10, 30)
	q2 := testQuery(db, "seq-07", 0, 25)
	queries := []client.BatchQuery{
		{Index: "fast", Eps: 4.0, Query: q1},
		{Index: "fast", K: 5, Query: q2},
		{Index: "no-such-index", Eps: 1.0, Query: q1},
		{Index: "fast", Eps: 2.0, Query: q2},
	}

	want1, _, err := db.Search("fast", q1, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	want2, _, err := db.SearchKNN("fast", q2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want4, _, err := db.Search("fast", q2, 2.0)
	if err != nil {
		t.Fatal(err)
	}

	for _, mount := range []string{"flat", "sh3"} {
		results, agg, err := c.Batch(ctx, mount, queries, seqdb.SearchOptions{})
		if err != nil {
			t.Fatalf("%s: %v", mount, err)
		}
		if len(results) != len(queries) {
			t.Fatalf("%s: %d results for %d queries", mount, len(results), len(queries))
		}
		if results[0].Err != nil || !matchesBitIdentical(want1, results[0].Matches) {
			t.Errorf("%s: item 0 differs from in-process (err=%v)", mount, results[0].Err)
		}
		if results[1].Err != nil || !matchesBitIdentical(want2, results[1].Matches) {
			t.Errorf("%s: item 1 (knn) differs from in-process (err=%v)", mount, results[1].Err)
		}
		if results[2].Err == nil {
			t.Errorf("%s: item 2 should fail on the unknown index", mount)
		}
		var we *wire.Error
		if !errors.As(results[2].Err, &we) {
			t.Errorf("%s: item 2 error is untyped: %v", mount, results[2].Err)
		}
		if results[3].Err != nil || !matchesBitIdentical(want4, results[3].Matches) {
			t.Errorf("%s: item 3 after a failed item differs (err=%v)", mount, results[3].Err)
		}
		if results[0].Stats.Answers != uint64(len(want1)) {
			t.Errorf("%s: item 0 stats report %d answers, want %d", mount, results[0].Stats.Answers, len(want1))
		}
		if agg.Cells() == 0 {
			t.Errorf("%s: aggregate stats empty", mount)
		}
	}

	// The connection survives a batch: a plain search on the same client.
	got, _, err := c.Search(ctx, "flat", "fast", q1, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesBitIdentical(want1, got) {
		t.Error("post-batch search differs")
	}
}

// TestRouterThroughDaemons stands up the full serving topology: a backend
// daemon serving each shard as its own database, and a frontend daemon
// routing across them (one remote leg per shard, plus a mixed local/remote
// variant). Queries through the frontend must be bit-identical to the
// unsharded in-process answers, and the batch RPC must work end to end
// through the routing tier.
func TestRouterThroughDaemons(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	sdb := newSharded(t, db, 2)

	// Backend daemon: one mounted database per shard.
	backend := New(Config{})
	for i := 0; i < sdb.Shards(); i++ {
		if err := backend.AddDB(names[i+1], sdb.Shard(i)); err != nil {
			t.Fatal(err)
		}
	}
	backendAddr := start(t, backend)

	legClient1, err := client.Dial(backendAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer legClient1.Close()
	legClient2, err := client.Dial(backendAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer legClient2.Close()

	ctx := context.Background()
	// All-remote router and a mixed local/remote router: both must be
	// transparent.
	routers := map[string][]Leg{
		"remote": {
			{Remote: legClient1, RemoteDB: names[1]},
			{Remote: legClient2, RemoteDB: names[2]},
		},
		"mixed": {
			{Local: dbSource{sdb.Shard(0)}},
			{Remote: legClient2, RemoteDB: names[2]},
		},
	}
	front := New(Config{})
	for name, legs := range routers {
		r, err := NewRouter(ctx, legs)
		if err != nil {
			t.Fatal(err)
		}
		if err := front.AddSource(name, r); err != nil {
			t.Fatal(err)
		}
	}
	frontAddr := start(t, front)

	c, err := client.Dial(frontAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := testQuery(db, "seq-03", 10, 30)
	const eps = 4.0
	want, _, err := db.Search("fast", q, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantKNN, _, err := db.SearchKNN("fast", q, 5)
	if err != nil {
		t.Fatal(err)
	}

	for name := range routers {
		got, _, err := c.Search(ctx, name, "fast", q, eps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !matchesBitIdentical(want, got) {
			t.Errorf("%s: routed search differs from unsharded in-process", name)
		}
		gotKNN, _, err := c.SearchKNN(ctx, name, "fast", q, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !matchesBitIdentical(wantKNN, gotKNN) {
			t.Errorf("%s: routed knn differs from unsharded in-process", name)
		}
		ranges, err := c.Shards(ctx, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ranges) != 2 || ranges[0].Start != 0 || ranges[1].Start != ranges[0].Count {
			t.Errorf("%s: routed topology = %v", name, ranges)
		}

		// Batch through the routing tier.
		results, _, err := c.Batch(ctx, name, []client.BatchQuery{
			{Index: "fast", Eps: eps, Query: q},
			{Index: "fast", K: 5, Query: q},
		}, seqdb.SearchOptions{})
		if err != nil {
			t.Fatalf("%s: batch: %v", name, err)
		}
		if results[0].Err != nil || !matchesBitIdentical(want, results[0].Matches) {
			t.Errorf("%s: routed batch search differs (err=%v)", name, results[0].Err)
		}
		if results[1].Err != nil || !matchesBitIdentical(wantKNN, results[1].Matches) {
			t.Errorf("%s: routed batch knn differs (err=%v)", name, results[1].Err)
		}
	}

	// Router stats recombine across the legs.
	st, err := c.Stats(ctx, "remote")
	if err != nil {
		t.Fatal(err)
	}
	if st.Sequences != db.Len() {
		t.Errorf("routed stats count %d sequences, want %d", st.Sequences, db.Len())
	}
	infos, err := c.ListIndexes(ctx, "remote")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "fast" {
		t.Errorf("routed indexes = %v", infos)
	}
}

// failingSource is a Source whose searches fail with a PartialError, as a
// coordinator does when a shard dies mid-search.
type failingSource struct {
	dbSource // provides the non-search surface over a real DB
	cause    error
}

func (f failingSource) SearchVisitWith(ctx context.Context, index string, q []float64, eps float64, fn func(seqdb.Match) bool, opts seqdb.SearchOptions) (seqdb.SearchStats, error) {
	return seqdb.SearchStats{}, &seqdb.PartialError{Answered: []int{0, 2}, Failed: []int{1}, Cause: f.cause}
}

// TestPartialFailureIsTyped: a shard lost mid-search must surface to the
// client as CodeShardUnavailable carrying the shards that answered — typed,
// so callers can distinguish a partial outage from a bad request.
func TestPartialFailureIsTyped(t *testing.T) {
	leakCheck(t)
	db := newTestDB(t)
	s := New(Config{})
	cause := errors.New("shard 1 unreachable")
	if err := s.AddSource("frail", failingSource{dbSource{db}, cause}); err != nil {
		t.Fatal(err)
	}
	addr := start(t, s)

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Search(context.Background(), "frail", "fast", []float64{1, 2, 3}, 1.0)
	var we *wire.Error
	if !errors.As(err, &we) {
		t.Fatalf("want a typed *wire.Error, got %v", err)
	}
	if we.Code != wire.CodeShardUnavailable {
		t.Errorf("code = %v, want shard-unavailable", we.Code)
	}
	if !reflect.DeepEqual(we.Answered, []int{0, 2}) {
		t.Errorf("answered = %v, want [0 2]", we.Answered)
	}
	if !errors.Is(err, wire.ErrShardUnavailable) {
		t.Error("errors.Is must match ErrShardUnavailable")
	}
}
