package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"twsearch/internal/wire"
	"twsearch/seqdb"
)

// handleBatch runs one protocol-v4 batch request: many queries against one
// database, answered as a multiplexed stream in which every frame names the
// item it belongs to. The whole batch holds one admission slot and runs
// under one request context, so a batch of N queries costs the client one
// round-trip and the server one scheduling decision.
//
// Items run in request order. An individual item's failure (unknown index,
// bad op) is a TBatchItemError for that item and the batch continues; a
// deadline or shutdown ends the whole batch with a TError, since every
// remaining item would fail the same way. The terminating TDone carries the
// batch-wide aggregate of the per-item work counters.
func (s *Server) handleBatch(conn net.Conn, bw *bufio.Writer, body []byte) (reqResult, error) {
	res := reqResult{op: "batch"}
	req, err := wire.DecodeBatchReq(body)
	if err != nil {
		res.err = &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
		return res, writeError(bw, res.err)
	}
	res.db = req.DB
	db, err := s.lookupDB(req.DB)
	if err != nil {
		res.err = err
		return res, writeError(bw, err)
	}
	release, ok := s.admit()
	if !ok {
		res.err = wire.ErrOverloaded
		return res, writeError(bw, res.err)
	}
	defer release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	ctx, cleanup := s.requestCtx(conn, req.Timeout)
	defer cleanup()
	opts := s.searchOpts(req.Parallelism)

	var agg seqdb.SearchStats
	buf := make([]byte, 0, 256)
	for id, item := range req.Items {
		var stats seqdb.SearchStats
		var itemErr error
		switch item.Op {
		case wire.BatchOpSearch:
			var ioErr error
			stats, itemErr = db.SearchVisitWith(ctx, item.Index, item.Query, item.Eps, func(m seqdb.Match) bool {
				buf = buf[:0]
				bm := wire.BatchMatch{ID: id, SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance}
				buf = bm.Encode(buf)
				if err := wire.WriteFrame(bw, wire.TBatchMatch, buf); err != nil {
					ioErr = err
					return false
				}
				res.matches++
				return true
			}, opts)
			if ioErr != nil {
				res.stats, res.counted = agg, true
				return res, ioErr
			}
		case wire.BatchOpKNN:
			var ms []seqdb.Match
			ms, stats, itemErr = db.SearchKNNWith(ctx, item.Index, item.Query, item.K, opts)
			if itemErr == nil {
				for _, m := range ms {
					buf = buf[:0]
					bm := wire.BatchMatch{ID: id, SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance}
					buf = bm.Encode(buf)
					if err := wire.WriteFrame(bw, wire.TBatchMatch, buf); err != nil {
						res.stats, res.counted = agg, true
						return res, err
					}
					res.matches++
				}
			}
		default:
			itemErr = &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unknown batch op %#x", item.Op)}
		}
		agg.Add(stats)
		if itemErr != nil {
			werr := classify(itemErr)
			var we *wire.Error
			if !errors.As(werr, &we) {
				we = &wire.Error{Code: wire.CodeInternal, Msg: werr.Error()}
			}
			if we.Code == wire.CodeDeadline || we.Code == wire.CodeShutdown {
				res.err = we
				res.stats, res.counted = agg, true
				return res, writeError(bw, we)
			}
			bie := wire.BatchItemError{ID: id, Code: we.Code, Msg: we.Msg}
			if err := wire.WriteFrame(bw, wire.TBatchItemError, bie.Encode(nil)); err != nil {
				res.stats, res.counted = agg, true
				return res, err
			}
			continue
		}
		bid := wire.BatchItemDone{ID: id, Stats: stats}
		if err := wire.WriteFrame(bw, wire.TBatchItemDone, bid.Encode(nil)); err != nil {
			res.stats, res.counted = agg, true
			return res, err
		}
	}
	res.stats, res.counted = agg, true
	done := wire.Done{Stats: agg}
	return res, wire.WriteFrame(bw, wire.TDone, done.Encode(nil))
}

// handleShards answers the protocol-v4 topology query: which slice of the
// global sequence numbering each shard of the database holds. An unsharded
// database answers with a single range.
func (s *Server) handleShards(bw *bufio.Writer, body []byte) (reqResult, error) {
	res := reqResult{op: "shards"}
	req, err := wire.DecodeShardsReq(body)
	if err != nil {
		res.err = &wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()}
		return res, writeError(bw, res.err)
	}
	res.db = req.DB
	db, err := s.lookupDB(req.DB)
	if err != nil {
		res.err = err
		return res, writeError(bw, err)
	}
	var resp wire.ShardsResp
	for _, r := range db.ShardRanges() {
		resp.Ranges = append(resp.Ranges, wire.ShardRange{Start: r.Start, Count: r.Count})
	}
	return res, wire.WriteFrame(bw, wire.TShardsResp, resp.Encode(nil))
}
