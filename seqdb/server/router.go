package server

// This file is the routing tier: a Router is a Source whose shards live
// behind "legs" — local database directories or remote twsearchd daemons —
// so one frontend daemon can serve a logical database whose index shards
// are spread across machines. The Router reuses the scatter-gather
// coordinator: each leg is one backend, queries fan out leg-parallel with
// the caller's context (and therefore its deadline) propagated to every
// leg, and a leg that fails mid-search surfaces as a typed partial-failure
// error naming the shards that did answer.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"twsearch/internal/shard"
	"twsearch/seqdb"
	"twsearch/seqdb/client"
)

// Leg is one constituent of a Router: exactly one of Local (an already-open
// database or sharded database, any Source) or Remote (a twsearchd client
// plus the database name mounted there) is set.
type Leg struct {
	Local    Source
	Remote   *client.Client
	RemoteDB string
}

// Router fans searches out over an ordered list of legs holding consecutive
// slices of one logical database's sequence numbering: leg 0 holds the
// first block of sequences, leg 1 the next, and so on — the same contiguous
// discipline the shard partitioner uses, extended across machines. It
// implements Source, so it mounts on a Server like any local database.
type Router struct {
	legs   []Leg
	coord  *shard.Coordinator
	ranges []seqdb.ShardRange // flattened topology, leg sub-ranges rebased
}

// remoteLeg adapts one remote daemon's database to the coordinator Backend.
// The caller's ctx flows into every client call, so the request deadline
// propagates to the remote server both as a socket deadline and as the
// server-side timeout hint.
type remoteLeg struct {
	c  *client.Client
	db string
}

func (l remoteLeg) Search(ctx context.Context, index string, q []float64, eps float64, opts shard.Options) ([]shard.Match, shard.Stats, error) {
	ms, stats, err := l.c.SearchWith(ctx, l.db, index, q, eps, seqdb.SearchOptions{Parallelism: opts.Parallelism})
	return routerMatches(ms), stats, err
}

func (l remoteLeg) Scan(ctx context.Context, q []float64, eps float64) ([]shard.Match, shard.Stats, error) {
	ms, stats, err := l.c.SeqScan(ctx, l.db, q, eps)
	return routerMatches(ms), stats, err
}

// localLeg adapts a local Source to the coordinator Backend.
type localLeg struct{ src Source }

func (l localLeg) Search(ctx context.Context, index string, q []float64, eps float64, opts shard.Options) ([]shard.Match, shard.Stats, error) {
	var ms []seqdb.Match
	stats, err := l.src.SearchVisitWith(ctx, index, q, eps, func(m seqdb.Match) bool {
		ms = append(ms, m)
		return true
	}, seqdb.SearchOptions{Parallelism: opts.Parallelism})
	if err != nil {
		return nil, stats, err
	}
	sortPositions(ms)
	return routerMatches(ms), stats, nil
}

func (l localLeg) Scan(ctx context.Context, q []float64, eps float64) ([]shard.Match, shard.Stats, error) {
	ms, stats, err := l.src.SeqScanCtx(ctx, q, eps)
	return routerMatches(ms), stats, err
}

// sortPositions orders matches by (sequence, start, end). An unsharded
// DB's visitor delivers in traversal order, so the leg sorts before the
// coordinator concatenates.
func sortPositions(ms []seqdb.Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.End < b.End
	})
}

func routerMatches(ms []seqdb.Match) []shard.Match {
	out := make([]shard.Match, len(ms))
	for i, m := range ms {
		out[i] = shard.Match{SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance}
	}
	return out
}

// NewRouter assembles a routing tier over the legs. It contacts every leg
// once (local call or one RPC per remote leg) to learn its sequence count
// and shard topology, then derives the global numbering by prefix sums in
// leg order. ctx bounds the topology fetch, not later searches.
func NewRouter(ctx context.Context, legs []Leg) (*Router, error) {
	if len(legs) == 0 {
		return nil, errors.New("server: router needs at least one leg")
	}
	r := &Router{legs: legs}
	backends := make([]shard.Backend, len(legs))
	coordRanges := make([]shard.Range, len(legs))
	base := 0
	for i, leg := range legs {
		var sub []seqdb.ShardRange
		switch {
		case leg.Local != nil && leg.Remote == nil:
			backends[i] = localLeg{src: leg.Local}
			sub = leg.Local.ShardRanges()
		case leg.Remote != nil && leg.Local == nil:
			backends[i] = remoteLeg{c: leg.Remote, db: leg.RemoteDB}
			ranges, err := leg.Remote.Shards(ctx, leg.RemoteDB)
			if err != nil {
				return nil, fmt.Errorf("server: fetching leg %d topology: %w", i, err)
			}
			sub = ranges
		default:
			return nil, fmt.Errorf("server: leg %d must set exactly one of Local and Remote", i)
		}
		count := 0
		for _, sr := range sub {
			r.ranges = append(r.ranges, seqdb.ShardRange{Start: base + sr.Start, Count: sr.Count})
			count += sr.Count
		}
		coordRanges[i] = shard.Range{Start: base, Count: count}
		base += count
	}
	coord, err := shard.NewCoordinator(backends, coordRanges)
	if err != nil {
		return nil, err
	}
	r.coord = coord
	return r, nil
}

// Legs returns the number of legs behind the router.
func (r *Router) Legs() int { return len(r.legs) }

// SearchVisitWith streams the fanned-out range search's answers in global
// (sequence, start, end) order; see ShardedDB.SearchVisitWith for the
// ordering and early-stop semantics.
func (r *Router) SearchVisitWith(ctx context.Context, index string, q []float64, eps float64, fn func(seqdb.Match) bool, opts seqdb.SearchOptions) (seqdb.SearchStats, error) {
	if fn == nil {
		return seqdb.SearchStats{}, fmt.Errorf("server: nil visitor")
	}
	return r.coord.SearchVisit(ctx, index, q, eps, func(m shard.Match) bool {
		return fn(seqdb.Match{SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance})
	}, shard.Options{Parallelism: opts.Parallelism})
}

// SearchKNNWith returns the k globally nearest subsequences across all
// legs, byte-identical to the same search over the unpartitioned data.
func (r *Router) SearchKNNWith(ctx context.Context, index string, q []float64, k int, opts seqdb.SearchOptions) ([]seqdb.Match, seqdb.SearchStats, error) {
	ms, stats, err := r.coord.SearchKNN(ctx, index, q, k, shard.Options{Parallelism: opts.Parallelism})
	if err != nil {
		return nil, stats, err
	}
	return fromCoordMatches(ms), stats, nil
}

// SeqScanCtx fans the exhaustive baseline out over the legs.
func (r *Router) SeqScanCtx(ctx context.Context, q []float64, eps float64) ([]seqdb.Match, seqdb.SearchStats, error) {
	ms, stats, err := r.coord.Scan(ctx, q, eps)
	if err != nil {
		return nil, stats, err
	}
	return fromCoordMatches(ms), stats, nil
}

func fromCoordMatches(ms []shard.Match) []seqdb.Match {
	out := make([]seqdb.Match, len(ms))
	for i, m := range ms {
		out[i] = seqdb.Match{SeqID: m.SeqID, Seq: m.Seq, Start: m.Start, End: m.End, Distance: m.Distance}
	}
	return out
}

// SourceStats merges every leg's dataset summary and buffer-pool counters.
func (r *Router) SourceStats(ctx context.Context) (seqdb.Stats, []seqdb.IndexPoolStats, error) {
	parts := make([]seqdb.Stats, 0, len(r.legs))
	var pools []seqdb.IndexPoolStats
	poolAt := map[string]int{}
	for i, leg := range r.legs {
		var st seqdb.Stats
		var ps []seqdb.IndexPoolStats
		var err error
		if leg.Local != nil {
			st, ps, err = leg.Local.SourceStats(ctx)
		} else {
			st, ps, err = leg.Remote.StatsPools(ctx, leg.RemoteDB)
		}
		if err != nil {
			return seqdb.Stats{}, nil, fmt.Errorf("server: leg %d stats: %w", i, err)
		}
		parts = append(parts, st)
		for _, p := range ps {
			at, ok := poolAt[p.Index]
			if !ok {
				at = len(pools)
				poolAt[p.Index] = at
				pools = append(pools, seqdb.IndexPoolStats{Index: p.Index})
			}
			pools[at].Shards = append(pools[at].Shards, p.Shards...)
		}
	}
	return seqdb.MergeStats(parts), pools, nil
}

// SourceIndexes reports leg 0's index metadata with sizes and node counts
// summed across legs: the legs are built in lockstep, so the set of index
// names is common while the physical sizes are per-leg.
func (r *Router) SourceIndexes(ctx context.Context) ([]seqdb.IndexInfo, error) {
	var out []seqdb.IndexInfo
	at := map[string]int{}
	for i, leg := range r.legs {
		var infos []seqdb.IndexInfo
		var err error
		if leg.Local != nil {
			infos, err = leg.Local.SourceIndexes(ctx)
		} else {
			infos, err = leg.Remote.ListIndexes(ctx, leg.RemoteDB)
		}
		if err != nil {
			return nil, fmt.Errorf("server: leg %d indexes: %w", i, err)
		}
		for _, info := range infos {
			j, ok := at[info.Name]
			if !ok {
				at[info.Name] = len(out)
				out = append(out, info)
				continue
			}
			out[j].SizeBytes += info.SizeBytes
			out[j].Leaves += info.Leaves
			out[j].Nodes += info.Nodes
		}
	}
	return out, nil
}

// ShardRanges reports the flattened topology: every leg's own shard ranges,
// rebased into the router's global numbering, in leg order.
func (r *Router) ShardRanges() []seqdb.ShardRange {
	return append([]seqdb.ShardRange(nil), r.ranges...)
}

// ParseLegSpec parses one -route leg of the twsearchd command line: either
// `@addr/db` (a database mounted on a remote daemon) or a local database
// directory path (plain or sharded, auto-detected). It returns a Leg ready
// for NewRouter; for local legs the returned closer owns the opened
// database.
func ParseLegSpec(spec string) (Leg, func() error, error) {
	return ParseLegSpecWith(spec, seqdb.OpenOptions{})
}

// ParseLegSpecWith is ParseLegSpec with open options applied to local legs
// (remote legs read through the far daemon's own backend and ignore them).
func ParseLegSpecWith(spec string, opts seqdb.OpenOptions) (Leg, func() error, error) {
	if rest, ok := strings.CutPrefix(spec, "@"); ok {
		addr, db, ok := strings.Cut(rest, "/")
		if !ok || addr == "" {
			return Leg{}, nil, fmt.Errorf("server: remote leg %q, want @addr/db", spec)
		}
		c, err := client.Dial(addr)
		if err != nil {
			return Leg{}, nil, err
		}
		return Leg{Remote: c, RemoteDB: db}, c.Close, nil
	}
	if seqdb.IsSharded(spec) {
		db, err := seqdb.OpenShardedWith(spec, opts)
		if err != nil {
			return Leg{}, nil, err
		}
		return Leg{Local: shardedSource{db}}, db.Close, nil
	}
	db, err := seqdb.OpenWith(spec, opts)
	if err != nil {
		return Leg{}, nil, err
	}
	return Leg{Local: dbSource{db}}, db.Close, nil
}
