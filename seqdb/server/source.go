package server

import (
	"context"
	"sort"

	"twsearch/seqdb"
)

// Source is what the server mounts under a database name: anything that
// can answer the search-shaped requests and the metadata requests of the
// wire protocol. A local unsharded database, a local sharded database, and
// the Router (which fans out over local directories and remote daemons)
// all implement it, so every handler is agnostic about where the sequences
// actually live.
//
// The metadata methods take a context because a Source may need the
// network to answer them (a Router with remote legs); purely local sources
// ignore it.
type Source interface {
	// SearchVisitWith streams a range search's answers to fn; returning
	// false stops the search. Sharded sources deliver in global (sequence,
	// start, end) order.
	SearchVisitWith(ctx context.Context, index string, q []float64, eps float64, fn func(seqdb.Match) bool, opts seqdb.SearchOptions) (seqdb.SearchStats, error)
	// SearchKNNWith returns the k nearest subsequences in position order.
	SearchKNNWith(ctx context.Context, index string, q []float64, k int, opts seqdb.SearchOptions) ([]seqdb.Match, seqdb.SearchStats, error)
	// SeqScanCtx runs the exhaustive sequential-scan baseline.
	SeqScanCtx(ctx context.Context, q []float64, eps float64) ([]seqdb.Match, seqdb.SearchStats, error)
	// SourceStats returns the dataset summary and per-index buffer-pool
	// counters.
	SourceStats(ctx context.Context) (seqdb.Stats, []seqdb.IndexPoolStats, error)
	// SourceIndexes returns the open indexes' metadata, sorted by name.
	SourceIndexes(ctx context.Context) ([]seqdb.IndexInfo, error)
	// ShardRanges reports the shard topology: each shard's slice of the
	// global sequence numbering. An unsharded source reports one range.
	ShardRanges() []seqdb.ShardRange
}

// dbSource adapts an unsharded *seqdb.DB to the Source interface: the
// search methods and ShardRanges come from the embedded DB; the metadata
// methods drop the context the local DB does not need.
type dbSource struct{ *seqdb.DB }

func (s dbSource) SourceStats(ctx context.Context) (seqdb.Stats, []seqdb.IndexPoolStats, error) {
	return s.Stats(), s.PoolStats(), nil
}

func (s dbSource) SourceIndexes(ctx context.Context) ([]seqdb.IndexInfo, error) {
	return localIndexes(s.DB)
}

// shardedSource adapts a *seqdb.ShardedDB the same way.
type shardedSource struct{ *seqdb.ShardedDB }

func (s shardedSource) SourceStats(ctx context.Context) (seqdb.Stats, []seqdb.IndexPoolStats, error) {
	return s.Stats(), s.PoolStats(), nil
}

func (s shardedSource) SourceIndexes(ctx context.Context) ([]seqdb.IndexInfo, error) {
	return localIndexes(s.ShardedDB)
}

// indexLister is the slice of the seqdb API localIndexes needs; both DB and
// ShardedDB provide it.
type indexLister interface {
	Indexes() []string
	Index(name string) (seqdb.IndexInfo, error)
}

// localIndexes materializes a local database's index metadata, sorted.
func localIndexes(db indexLister) ([]seqdb.IndexInfo, error) {
	names := db.Indexes()
	sort.Strings(names)
	out := make([]seqdb.IndexInfo, 0, len(names))
	for _, name := range names {
		info, err := db.Index(name)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}
