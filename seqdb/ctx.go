package seqdb

import (
	"context"
	"errors"
	"fmt"

	"twsearch/internal/core"
)

// ErrNoIndex reports a search against an index name the database does not
// have. Errors returned by Search and friends wrap it, so callers (and the
// network server) can classify lookup failures with errors.Is.
var ErrNoIndex = errors.New("no such index")

func errNoIndex(name string) error {
	return fmt.Errorf("seqdb: no index %q: %w", name, ErrNoIndex)
}

// SearchCtx is Search with cancellation: when ctx is canceled or its
// deadline passes the traversal aborts through the engine's early-stop path
// and ctx.Err() is returned. The no-false-dismissal guarantee is unaffected
// — a canceled search returns an error, never a silently truncated answer
// set.
func (db *DB) SearchCtx(ctx context.Context, indexName string, q []float64, eps float64) ([]Match, SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oi, ok := db.indexes[indexName]
	if !ok {
		return nil, SearchStats{}, errNoIndex(indexName)
	}
	ms, stats, err := oi.ix.SearchCtx(ctx, q, eps)
	if err != nil {
		return nil, stats, err
	}
	return db.publicMatches(ms), stats, nil
}

// SearchVisitCtx is SearchVisit with cancellation; see SearchCtx. After a
// cancellation no further answers are delivered to fn.
func (db *DB) SearchVisitCtx(ctx context.Context, indexName string, q []float64, eps float64, fn func(Match) bool) (SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oi, ok := db.indexes[indexName]
	if !ok {
		return SearchStats{}, errNoIndex(indexName)
	}
	if fn == nil {
		return SearchStats{}, fmt.Errorf("seqdb: nil visitor")
	}
	return oi.ix.SearchVisitCtx(ctx, q, eps, func(m core.Match) bool {
		return fn(Match{
			SeqID:    db.data.Seq(m.Ref.Seq).ID,
			Seq:      m.Ref.Seq,
			Start:    m.Ref.Start,
			End:      m.Ref.End,
			Distance: m.Distance,
		})
	})
}

// SearchKNNCtx is SearchKNN with cancellation; each threshold-expansion
// round runs under ctx.
func (db *DB) SearchKNNCtx(ctx context.Context, indexName string, q []float64, k int) ([]Match, SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oi, ok := db.indexes[indexName]
	if !ok {
		return nil, SearchStats{}, errNoIndex(indexName)
	}
	ms, stats, err := oi.ix.SearchKNNCtx(ctx, q, k)
	if err != nil {
		return nil, stats, err
	}
	return db.publicMatches(ms), stats, nil
}

// SeqScanCtx is SeqScan with cancellation, polled once per suffix start.
func (db *DB) SeqScanCtx(ctx context.Context, q []float64, eps float64) ([]Match, SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ms, stats, err := core.SeqScanCtx(ctx, db.data, q, eps, -1)
	if err != nil {
		return nil, stats, err
	}
	return db.publicMatches(ms), stats, nil
}
