package seqdb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// buildBackendDB creates a small database with one index per encoding so the
// backend tests can cross every (encoding, backend) pair.
func buildBackendDB(t *testing.T) string {
	t.Helper()
	db := newTestDB(t, 8, 60, 42)
	for _, enc := range []Encoding{EncodingV1, EncodingV2} {
		name := fmt.Sprintf("ix-%s", enc)
		spec := IndexSpec{Method: MethodMaxEntropy, Categories: 8, Sparse: true, Encoding: enc}
		if err := db.BuildIndex(name, spec); err != nil {
			t.Fatal(err)
		}
	}
	dir := db.Dir()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestBackendByteIdentical checks the storage-layer contract end to end:
// the same queries through the buffer pool, mmap, and auto backends — over
// both node record encodings — return byte-identical answers, including
// under concurrent mixed Search/SearchKNN load.
func TestBackendByteIdentical(t *testing.T) {
	dir := buildBackendDB(t)

	base, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	type query struct {
		from  string
		start int
		qlen  int
		eps   float64
		k     int
	}
	queries := []query{
		{"seq-0", 0, 12, 8, 3},
		{"seq-3", 10, 18, 12, 5},
		{"seq-5", 4, 9, 5, 2},
		{"seq-7", 20, 15, 10, 4},
	}
	cut := func(db *DB, q query) []float64 {
		vals := db.Values(q.from)
		if vals == nil || q.start+q.qlen > len(vals) {
			t.Fatalf("bad query cut %+v", q)
		}
		return append([]float64(nil), vals[q.start:q.start+q.qlen]...)
	}

	// Baseline answers through the default pool backend.
	type answer struct {
		search []Match
		knn    []Match
	}
	indexNames := []string{"ix-v1", "ix-v2"}
	want := map[string][]answer{}
	for _, name := range indexNames {
		for _, q := range queries {
			vals := cut(base, q)
			ms, _, err := base.Search(name, vals, q.eps)
			if err != nil {
				t.Fatal(err)
			}
			kms, _, err := base.SearchKNN(name, vals, q.k)
			if err != nil {
				t.Fatal(err)
			}
			want[name] = append(want[name], answer{search: ms, knn: kms})
		}
	}
	// Cross-encoding sanity: the two indexes describe the same data, so the
	// range answers must agree before any backend comparison begins.
	for i := range queries {
		if !reflect.DeepEqual(want["ix-v1"][i].search, want["ix-v2"][i].search) {
			t.Fatalf("query %d: v1 and v2 range answers differ", i)
		}
	}

	for _, backend := range []Backend{BackendPool, BackendMmap, BackendAuto} {
		t.Run(string(backend), func(t *testing.T) {
			db, err := OpenWith(dir, OpenOptions{Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			const goroutines = 8
			const rounds = 12
			var wg sync.WaitGroup
			errCh := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						name := indexNames[(g+r)%len(indexNames)]
						qi := (g + r) % len(queries)
						q := queries[qi]
						vals := cut(base, q)
						if (g+r)%2 == 0 {
							ms, _, err := db.Search(name, vals, q.eps)
							if err != nil {
								errCh <- err
								return
							}
							if !reflect.DeepEqual(ms, want[name][qi].search) {
								errCh <- fmt.Errorf("%s/%s query %d: range answers diverge from pool baseline", backend, name, qi)
								return
							}
						} else {
							ms, _, err := db.SearchKNN(name, vals, q.k)
							if err != nil {
								errCh <- err
								return
							}
							if !reflect.DeepEqual(ms, want[name][qi].knn) {
								errCh <- fmt.Errorf("%s/%s query %d: knn answers diverge from pool baseline", backend, name, qi)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenWithRestoresEncoding checks that reopening a database reports each
// index's persisted encoding rather than the zero value.
func TestOpenWithRestoresEncoding(t *testing.T) {
	dir := buildBackendDB(t)
	db, err := OpenWith(dir, OpenOptions{Backend: BackendMmap})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for enc, name := range map[Encoding]string{EncodingV1: "ix-v1", EncodingV2: "ix-v2"} {
		info, err := db.Index(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.Spec.Encoding != enc {
			t.Fatalf("index %s: encoding = %v, want %v", name, info.Spec.Encoding, enc)
		}
	}
}
