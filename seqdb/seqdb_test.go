package seqdb

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func testValues(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	v := float64(rng.Intn(50))
	for i := range vals {
		v += float64(rng.Intn(5) - 2)
		vals[i] = v
	}
	return vals
}

func newTestDB(t *testing.T, nSeq, seqLen int, seed int64) *DB {
	t.Helper()
	db, err := Create(filepath.Join(t.TempDir(), "db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nSeq; i++ {
		if err := db.Add(fmt.Sprintf("seq-%d", i), testValues(rng, seqLen)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateRejectsExisting(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Create(dir); err == nil {
		t.Fatal("second Create accepted")
	}
}

func TestAddAndQueryLifecycle(t *testing.T) {
	db := newTestDB(t, 5, 40, 1)
	if db.Len() != 5 {
		t.Fatalf("Len = %d", db.Len())
	}
	ids := db.SequenceIDs()
	if len(ids) != 5 || ids[0] != "seq-0" {
		t.Fatalf("ids = %v", ids)
	}
	if db.Values("seq-2") == nil {
		t.Fatal("Values(seq-2) nil")
	}
	if db.Values("nope") != nil {
		t.Fatal("Values of absent id not nil")
	}
	st := db.Stats()
	if st.Sequences != 5 || st.TotalElements != 200 {
		t.Fatalf("stats = %+v", st)
	}

	if err := db.BuildIndex("main", IndexSpec{Method: MethodMaxEntropy, Categories: 8, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("late", []float64{1, 2}); err == nil {
		t.Fatal("Add with live index accepted")
	}
	info, err := db.Index("main")
	if err != nil {
		t.Fatal(err)
	}
	if info.SizeBytes <= 0 || info.Leaves == 0 {
		t.Fatalf("info = %+v", info)
	}

	q := append([]float64(nil), db.Values("seq-1")[5:15]...)
	idxMatches, idxStats, err := db.Search("main", q, 10)
	if err != nil {
		t.Fatal(err)
	}
	scanMatches, _, err := db.SeqScan(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idxMatches, scanMatches) {
		t.Fatalf("index %d matches, scan %d", len(idxMatches), len(scanMatches))
	}
	if len(idxMatches) == 0 {
		t.Fatal("query cut from the data found nothing")
	}
	// The query itself must be among the answers at distance 0.
	found := false
	for _, m := range idxMatches {
		if m.SeqID == "seq-1" && m.Start == 5 && m.End == 15 && m.Distance == 0 {
			found = true
		}
		if m.Distance > 10 {
			t.Fatalf("match above threshold: %+v", m)
		}
	}
	if !found {
		t.Fatal("verbatim query subsequence not found at distance 0")
	}
	if idxStats.Answers != uint64(len(idxMatches)) {
		t.Fatal("stats.Answers mismatch")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4; i++ {
		if err := db.Add(fmt.Sprintf("s%d", i), testValues(rng, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("a", IndexSpec{Method: MethodEqualLength, Categories: 6}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("b", IndexSpec{Method: MethodMaxEntropy, Categories: 4, Sparse: true, Window: 8}); err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), db.Values("s0")[3:12]...)
	wantA, _, err := db.Search("a", q, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantB, _, err := db.Search("b", q, 7)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	names := re.Indexes()
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Fatalf("indexes after reopen = %v", names)
	}
	gotA, _, err := re.Search("a", q, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _, err := re.Search("b", q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatal("index a differs after reopen")
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatal("index b (sparse, windowed) differs after reopen")
	}
	infoB, err := re.Index("b")
	if err != nil {
		t.Fatal(err)
	}
	if !infoB.Spec.Sparse || infoB.Spec.Window != 8 {
		t.Fatalf("spec b after reopen = %+v", infoB.Spec)
	}
}

func TestDropIndex(t *testing.T) {
	db := newTestDB(t, 3, 20, 3)
	if err := db.BuildIndex("tmp", IndexSpec{Categories: 4}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("tmp"); err != nil {
		t.Fatal(err)
	}
	if len(db.Indexes()) != 0 {
		t.Fatal("index still listed")
	}
	if err := db.DropIndex("tmp"); err == nil {
		t.Fatal("double drop accepted")
	}
	// Dropping enables Add again, and the name is reusable.
	if err := db.Add("later", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("tmp", IndexSpec{Categories: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIndexValidation(t *testing.T) {
	db := newTestDB(t, 2, 15, 4)
	if err := db.BuildIndex("bad name", IndexSpec{}); err == nil {
		t.Error("space in name accepted")
	}
	if err := db.BuildIndex("", IndexSpec{}); err == nil {
		t.Error("empty name accepted")
	}
	if err := db.BuildIndex("x", IndexSpec{}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("x", IndexSpec{}); err == nil {
		t.Error("duplicate name accepted")
	}
	empty, err := Create(filepath.Join(t.TempDir(), "empty"))
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if err := empty.BuildIndex("x", IndexSpec{}); err == nil {
		t.Error("indexing empty db accepted")
	}
}

func TestSearchErrors(t *testing.T) {
	db := newTestDB(t, 2, 15, 5)
	if _, _, err := db.Search("nope", []float64{1}, 5); err == nil {
		t.Error("unknown index accepted")
	}
	if err := db.BuildIndex("x", IndexSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Search("x", nil, 5); err == nil {
		t.Error("empty query accepted")
	}
}

// All four methods must agree with SeqScan through the public API.
func TestAllMethodsAgree(t *testing.T) {
	db := newTestDB(t, 4, 30, 6)
	rng := rand.New(rand.NewSource(7))
	q := testValues(rng, 8)
	want, _, err := db.SeqScan(q, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range []Method{MethodExact, MethodEqualLength, MethodMaxEntropy, MethodKMeans} {
		name := fmt.Sprintf("m%d", i)
		if err := db.BuildIndex(name, IndexSpec{Method: m, Categories: 6, Sparse: i%2 == 0}); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got, _, err := db.Search(name, q, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d matches, scan %d", m, len(got), len(want))
		}
		for j := range got {
			if got[j].SeqID != want[j].SeqID || got[j].Start != want[j].Start ||
				got[j].End != want[j].End || math.Abs(got[j].Distance-want[j].Distance) > 1e-9 {
				t.Fatalf("%s: match %d differs", m, j)
			}
		}
	}
}

func TestAddCopiesValues(t *testing.T) {
	db := newTestDB(t, 0, 0, 8)
	vals := []float64{1, 2, 3}
	if err := db.Add("a", vals); err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	if db.Values("a")[0] != 1 {
		t.Fatal("Add aliased the caller's slice")
	}
}

func TestSearchKNNPublic(t *testing.T) {
	db := newTestDB(t, 5, 40, 9)
	if err := db.BuildIndex("k", IndexSpec{Method: MethodMaxEntropy, Categories: 8, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), db.Values("seq-2")[10:20]...)
	matches, _, err := db.SearchKNN("k", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 {
		t.Fatalf("got %d matches", len(matches))
	}
	// The verbatim subsequence must be among the 5 nearest (distance 0).
	found := false
	for _, m := range matches {
		if m.SeqID == "seq-2" && m.Start == 10 && m.End == 20 && m.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("verbatim subsequence missing from kNN result")
	}
	if _, _, err := db.SearchKNN("nope", q, 3); err == nil {
		t.Error("unknown index accepted")
	}
}

func TestSearchParallel(t *testing.T) {
	db := newTestDB(t, 6, 50, 10)
	if err := db.BuildIndex("p", IndexSpec{Method: MethodMaxEntropy, Categories: 10, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	queries := make([][]float64, 10)
	for i := range queries {
		queries[i] = testValues(rng, 8)
	}
	got, err := db.SearchParallel("p", queries, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(queries) {
		t.Fatalf("results = %d", len(got))
	}
	for i, q := range queries {
		want, _, err := db.Search("p", q, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d: parallel result differs (%d vs %d matches)", i, len(got[i]), len(want))
		}
	}
	if _, err := db.SearchParallel("nope", queries, 12, 2); err == nil {
		t.Error("unknown index accepted")
	}
	if res, err := db.SearchParallel("p", nil, 12, 2); err != nil || len(res) != 0 {
		t.Errorf("empty query list: res=%v err=%v", res, err)
	}
}

func TestMinAnswerLenPublic(t *testing.T) {
	db := newTestDB(t, 4, 30, 12)
	if err := db.BuildIndex("short", IndexSpec{Method: MethodMaxEntropy, Categories: 6, MinAnswerLen: 8}); err != nil {
		t.Fatal(err)
	}
	info, err := db.Index("short")
	if err != nil {
		t.Fatal(err)
	}
	if info.Spec.MinAnswerLen != 8 {
		t.Fatalf("spec MinAnswerLen = %d", info.Spec.MinAnswerLen)
	}
	q := append([]float64(nil), db.Values("seq-0")[2:12]...)
	matches, _, err := db.Search("short", q, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	for _, m := range matches {
		if m.End-m.Start < 8 {
			t.Fatalf("answer shorter than floor: %+v", m)
		}
	}
	// Scan answers of >= 8 elements must all be present.
	scan, _, err := db.SeqScan(q, 15)
	if err != nil {
		t.Fatal(err)
	}
	long := scan[:0:0]
	for _, m := range scan {
		if m.End-m.Start >= 8 {
			long = append(long, m)
		}
	}
	if !reflect.DeepEqual(matches, long) {
		t.Fatalf("length-filtered answers differ: %d vs %d", len(matches), len(long))
	}
}

func TestAlignPublic(t *testing.T) {
	db := newTestDB(t, 0, 0, 13)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Add("s", []float64{20, 20, 21, 21, 20, 20, 23, 23}))
	must(db.Save())
	must(db.BuildIndex("a", IndexSpec{Method: MethodExact}))
	q := []float64{20, 21, 20, 23}
	matches, _, err := db.Search("a", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	var whole *Match
	for i := range matches {
		if matches[i].Start == 0 && matches[i].End == 8 {
			whole = &matches[i]
		}
	}
	if whole == nil {
		t.Fatal("whole-sequence match missing")
	}
	dist, steps, err := db.Align(*whole, q)
	if err != nil {
		t.Fatal(err)
	}
	if dist != 0 {
		t.Fatalf("align distance = %v", dist)
	}
	if steps[0].QueryIndex != 0 || steps[0].SeqIndex != 0 {
		t.Fatalf("path start = %+v", steps[0])
	}
	last := steps[len(steps)-1]
	if last.QueryIndex != len(q)-1 || last.SeqIndex != 7 {
		t.Fatalf("path end = %+v", last)
	}
	// Every step pairs equal values in a zero-distance alignment.
	vals := db.Values("s")
	for _, st := range steps {
		if vals[st.SeqIndex] != q[st.QueryIndex] {
			t.Fatalf("step %+v pairs unequal values", st)
		}
	}
	if _, _, err := db.Align(Match{SeqID: "nope", End: 1}, q); err == nil {
		t.Error("unknown sequence accepted")
	}
	if _, _, err := db.Align(Match{SeqID: "s", Start: 5, End: 3}, q); err == nil {
		t.Error("inverted range accepted")
	}
	if _, _, err := db.Align(*whole, nil); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSelectCategoriesPublic(t *testing.T) {
	db := newTestDB(t, 6, 40, 14)
	rng := rand.New(rand.NewSource(15))
	queries := [][]float64{testValues(rng, 8), testValues(rng, 6)}
	best, measures, err := db.SelectCategories(
		IndexSpec{Method: MethodMaxEntropy, Sparse: true},
		[]int{4, 16, 64}, queries, 10, CostModel{Wt: 0, Ws: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Fatalf("space-weighted best = %d, want 4", best)
	}
	if len(measures) != 3 {
		t.Fatalf("measures = %d", len(measures))
	}
	// No trial files left behind.
	if err := db.BuildIndex("after", IndexSpec{Categories: 4}); err != nil {
		t.Fatalf("db unusable after tuning: %v", err)
	}
}

func TestExportImportCSV(t *testing.T) {
	db := newTestDB(t, 4, 20, 31)
	var buf bytes.Buffer
	if err := db.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := Create(filepath.Join(t.TempDir(), "copy"))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	n, err := other.ImportCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || other.Len() != 4 {
		t.Fatalf("imported %d, len %d", n, other.Len())
	}
	if !reflect.DeepEqual(other.Values("seq-2"), db.Values("seq-2")) {
		t.Fatal("values differ after export/import")
	}
	// Duplicate ids rejected atomically.
	if _, err := other.ImportCSV(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("duplicate import accepted")
	}
	if other.Len() != 4 {
		t.Fatal("failed import mutated the dataset")
	}
	// Imports blocked while indexed.
	if err := other.BuildIndex("x", IndexSpec{Categories: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := other.ImportCSV(strings.NewReader("zz,1,2\n")); err == nil {
		t.Fatal("import with live index accepted")
	}
}

func TestOpenMissingDirectory(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "ghost")); err == nil {
		t.Fatal("missing database opened")
	}
}

func TestOpenCorruptedIndexFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("x", IndexSpec{Categories: 3}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Corrupt the scheme file: Open must fail cleanly, not panic.
	if err := os.WriteFile(filepath.Join(dir, "idx-x.cat"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupted scheme accepted")
	}
	// Remove the stray index files: Open succeeds without the index.
	os.Remove(filepath.Join(dir, "idx-x.cat"))
	os.Remove(filepath.Join(dir, "idx-x.twt"))
	os.Remove(filepath.Join(dir, "idx-x.meta"))
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Indexes()) != 0 {
		t.Fatal("phantom index listed")
	}
}

func TestDirAccessor(t *testing.T) {
	db := newTestDB(t, 1, 5, 99)
	if db.Dir() == "" {
		t.Fatal("empty Dir")
	}
}

func TestSearchVisitPublic(t *testing.T) {
	db := newTestDB(t, 4, 30, 51)
	if err := db.BuildIndex("v", IndexSpec{Categories: 8, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), db.Values("seq-1")[5:13]...)
	want, _, err := db.Search("v", q, 9)
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	if _, err := db.SearchVisit("v", q, 9, func(m Match) bool {
		got = append(got, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d, Search %d", len(got), len(want))
	}
	if _, err := db.SearchVisit("nope", q, 9, func(Match) bool { return true }); err == nil {
		t.Error("unknown index accepted")
	}
	if _, err := db.SearchVisit("v", q, 9, nil); err == nil {
		t.Error("nil visitor accepted")
	}
}
