// Package seqdb is the public API of twsearch: a small sequence database
// with disk-based suffix-tree indexes for similarity search under the time
// warping distance, implementing Park, Chu, Yoon and Hsu, "Efficient
// Searches for Similar Subsequences of Different Lengths in Sequence
// Databases" (ICDE 2000).
//
// A database lives in a directory: the raw sequences in one binary file and
// each index as a tree file plus its categorization scheme. Typical use:
//
//	db, _ := seqdb.Create(dir)
//	db.Add("stock-A", prices)
//	db.Save()
//	db.BuildIndex("fast", seqdb.IndexSpec{
//		Method:     seqdb.MethodMaxEntropy,
//		Categories: 20,
//		Sparse:     true, // the paper's SST_C
//	})
//	matches, stats, _ := db.Search("fast", query, 30)
//
// Search returns every subsequence (of any length, any alignment) whose
// time warping distance from the query is at most the threshold — with no
// false dismissals: the answer set is identical to what the exhaustive
// SeqScan returns, typically at a small fraction of the work.
//
// A DB is safe for concurrent use: reads and searches may run in parallel
// with each other, while mutations (Add, ImportCSV, BuildIndex, DropIndex,
// Close) take exclusive ownership. Any number of Search/SearchKNN/
// SearchVisit calls run concurrently on one index handle — the index is
// immutable at query time, per-query state is pooled, and the tree's
// buffer pool is lock-striped — so one mounted database uses all the cores
// the callers bring. SearchParallel fans a query batch out over that same
// shared handle.
package seqdb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"twsearch/internal/core"
	"twsearch/internal/sequence"
)

const dataFileName = "data.twdb"

// Match is one answer subsequence. Start/End index the sequence's values as
// a half-open interval; Distance is the exact time warping distance from
// the query.
type Match struct {
	SeqID    string
	Seq      int
	Start    int
	End      int
	Distance float64
}

// SearchStats re-exports the engine's work counters (nodes visited, table
// cells computed, candidates, false alarms, I/O, wall clock).
type SearchStats = core.SearchStats

// Stats re-exports dataset summary statistics.
type Stats = sequence.Stats

// DB is a sequence database bound to a directory.
type DB struct {
	dir string
	// backend is the page source every index tree is opened through;
	// "" means the buffer pool.
	backend Backend
	// envelopes is the envelope-cascade mode applied to every index this
	// handle opens or builds; the zero value (auto) runs the cascade.
	envelopes EnvelopeMode

	// mu guards data and the indexes map: readers and searches share it,
	// mutations hold it exclusively. Methods never call other locking
	// methods while holding it.
	mu      sync.RWMutex
	data    *sequence.Dataset
	indexes map[string]*openIndex
}

// openIndex pairs an index handle with the spec it was built from. The
// handle needs no lock of its own: a core.Index is safe for concurrent
// searches, and lifecycle transitions (build, drop, close) happen under
// db.mu held exclusively, which excludes every in-flight search holding it
// shared.
type openIndex struct {
	spec IndexSpec
	ix   *core.Index
}

// Create initializes a new database in dir (creating the directory if
// needed). It fails if dir already holds a database.
func Create(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dataPath := filepath.Join(dir, dataFileName)
	if _, err := os.Stat(dataPath); err == nil {
		return nil, fmt.Errorf("seqdb: %s already holds a database", dir)
	}
	db := &DB{dir: dir, data: sequence.NewDataset(), indexes: map[string]*openIndex{}}
	if err := db.Save(); err != nil {
		return nil, err
	}
	return db, nil
}

// Open loads an existing database and all its indexes through the default
// (buffer pool) backend.
func Open(dir string) (*DB, error) {
	return OpenWith(dir, OpenOptions{})
}

// OpenWith loads an existing database and all its indexes, reading index
// trees through the chosen storage backend.
func OpenWith(dir string, opts OpenOptions) (*DB, error) {
	data, err := sequence.LoadFile(filepath.Join(dir, dataFileName))
	if err != nil {
		return nil, fmt.Errorf("seqdb: loading dataset: %w", err)
	}
	db := &DB{dir: dir, backend: opts.Backend, envelopes: opts.Envelopes, data: data, indexes: map[string]*openIndex{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "idx-") || !strings.HasSuffix(name, ".twt") {
			continue
		}
		idxName := strings.TrimSuffix(strings.TrimPrefix(name, "idx-"), ".twt")
		if err := db.openIndexFiles(idxName); err != nil {
			db.Close()
			return nil, fmt.Errorf("seqdb: opening index %q: %w", idxName, err)
		}
	}
	return db, nil
}

// Close releases every open index. The dataset is not implicitly saved.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, oi := range db.indexes {
		if err := oi.ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	db.indexes = map[string]*openIndex{}
	return first
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// Add appends a sequence. Adding is rejected while indexes exist, because
// they would silently go stale; drop indexes first and rebuild after.
func (db *DB) Add(id string, values []float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.indexes) > 0 {
		return errors.New("seqdb: cannot add sequences while indexes exist; drop indexes first")
	}
	vals := append([]float64(nil), values...)
	_, err := db.data.Add(sequence.Sequence{ID: id, Values: vals})
	return err
}

// Save persists the dataset to disk.
func (db *DB) Save() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data.SaveFile(filepath.Join(db.dir, dataFileName))
}

// Len returns the number of sequences.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data.Len()
}

// SequenceIDs returns all sequence ids in insertion order.
func (db *DB) SequenceIDs() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, db.data.Len())
	for i := range out {
		out[i] = db.data.Seq(i).ID
	}
	return out
}

// Values returns the elements of the sequence with the given id, or nil if
// absent. The slice must not be mutated.
func (db *DB) Values(id string) []float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.valuesByID(id)
}

// valuesByID looks a sequence up by id. The caller holds db.mu.
func (db *DB) valuesByID(id string) []float64 {
	i := db.data.ByID(id)
	if i < 0 {
		return nil
	}
	return db.data.Values(i)
}

// Stats summarizes the dataset.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data.ComputeStats()
}

// SeqScan runs the exhaustive baseline: exact answers with no index.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable scans use SeqScanCtx
func (db *DB) SeqScan(q []float64, eps float64) ([]Match, SearchStats, error) {
	return db.SeqScanCtx(context.Background(), q, eps)
}

// publicMatches converts engine matches to the public form. The caller
// holds db.mu.
func (db *DB) publicMatches(ms []core.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{
			SeqID:    db.data.Seq(m.Ref.Seq).ID,
			Seq:      m.Ref.Seq,
			Start:    m.Ref.Start,
			End:      m.Ref.End,
			Distance: m.Distance,
		}
	}
	return out
}
