package seqdb

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
)

// readIndexMeta parses an index meta file of key=value lines into the
// window and pool_pages settings. Unknown keys are ignored for forward
// compatibility, but a malformed value for a known key is an error —
// silently skipping one would reopen the index with the wrong window
// semantics or pool size. A missing meta file yields the defaults
// (window -1, pool_pages 0).
func readIndexMeta(path string) (window, poolPages int, err error) {
	window, poolPages = -1, 0
	mf, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return window, poolPages, nil
		}
		return 0, 0, err
	}
	defer mf.Close()
	sc := bufio.NewScanner(mf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		switch k {
		case "window":
			n, perr := strconv.Atoi(strings.TrimSpace(v))
			if perr != nil {
				return 0, 0, fmt.Errorf("seqdb: %s: bad window value %q", path, v)
			}
			window = n
		case "pool_pages":
			n, perr := strconv.Atoi(strings.TrimSpace(v))
			if perr != nil {
				return 0, 0, fmt.Errorf("seqdb: %s: bad pool_pages value %q", path, v)
			}
			poolPages = n
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, fmt.Errorf("seqdb: reading %s: %w", path, err)
	}
	return window, poolPages, nil
}

// removeIndexFiles deletes an index's on-disk files, joining every failure
// instead of reporting only the last; files already gone are not errors.
func removeIndexFiles(paths ...string) error {
	var errs []error
	for _, p := range paths {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
