package seqdb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"twsearch/internal/categorize"
	"twsearch/internal/core"
	"twsearch/internal/disktree"
)

// Method selects how continuous values are turned into category symbols.
type Method string

// The available categorization methods. MethodExact keeps every distinct
// value as its own point category, giving the paper's exact suffix tree ST
// (large index, no post-processing); the others give the compact lossy
// indexes ST_C / SST_C.
const (
	MethodExact       Method = Method(categorize.KindIdentity)
	MethodEqualLength Method = Method(categorize.KindEqualLength)
	MethodMaxEntropy  Method = Method(categorize.KindMaxEntropy)
	MethodKMeans      Method = Method(categorize.KindKMeans)
)

// IndexSpec describes an index to build.
type IndexSpec struct {
	// Method defaults to MethodMaxEntropy — the configuration the paper
	// recommends after its Section 7.1 study.
	Method Method
	// Categories is the number of categories (default 20; ignored by
	// MethodExact).
	Categories int
	// Sparse stores only run-head suffixes — the paper's SST_C.
	Sparse bool
	// Window, when positive, constrains matching to a Sakoe–Chiba band of
	// that half-width and prunes by the implied answer-length bounds
	// (the paper's conclusion-section extension). Zero or negative means
	// unconstrained.
	Window int
	// MinAnswerLen, when > 1, shrinks the index by skipping suffixes
	// shorter than this (the conclusion's other space optimization);
	// Search then returns only answers of at least this length.
	MinAnswerLen int
	// BatchSize and PoolPages tune the disk build pipeline (sequences per
	// in-memory tree; buffer pool pages per file).
	BatchSize int
	PoolPages int
	// Encoding selects the node record serialization of the tree file
	// (zero value = EncodingV1; EncodingV2 is the compact varint format;
	// EncodingV3 adds per-child envelope hulls for subtree pruning).
	Encoding Encoding
}

func (s IndexSpec) withDefaults() IndexSpec {
	if s.Method == "" {
		s.Method = MethodMaxEntropy
	}
	if s.Categories == 0 {
		s.Categories = 20
	}
	if s.Window <= 0 {
		s.Window = -1
	}
	if s.Encoding == 0 {
		s.Encoding = EncodingV1
	}
	return s
}

func validIndexName(name string) error {
	if name == "" {
		return errors.New("seqdb: empty index name")
	}
	for _, r := range name {
		if !(r == '-' || r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return fmt.Errorf("seqdb: index name %q contains %q", name, r)
		}
	}
	return nil
}

func (db *DB) treePath(name string) string {
	return filepath.Join(db.dir, "idx-"+name+".twt")
}

func (db *DB) schemePath(name string) string {
	return filepath.Join(db.dir, "idx-"+name+".cat")
}

func (db *DB) metaPath(name string) string {
	return filepath.Join(db.dir, "idx-"+name+".meta")
}

// BuildIndex builds and persists a new index. The database is exclusively
// locked for the duration of the build.
func (db *DB) BuildIndex(name string, spec IndexSpec) error {
	if err := validIndexName(name); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.indexes[name]; exists {
		return fmt.Errorf("seqdb: index %q already exists", name)
	}
	if db.data.Len() == 0 {
		return errors.New("seqdb: cannot index an empty database")
	}
	spec = spec.withDefaults()
	ix, err := core.Build(db.data, db.treePath(name), core.Options{
		Kind:         categorize.Kind(spec.Method),
		Categories:   spec.Categories,
		Sparse:       spec.Sparse,
		Window:       spec.Window,
		MinAnswerLen: spec.MinAnswerLen,
		Encoding:     spec.Encoding,
		Build: disktree.BuildOptions{
			BatchSize: spec.BatchSize,
			PoolPages: spec.PoolPages,
		},
	})
	if err != nil {
		return err
	}
	ix.DisableEnvelopes = db.envelopes == EnvelopesOff
	if err := db.persistIndexMeta(name, spec, ix); err != nil {
		ix.RemoveFile()
		return err
	}
	db.indexes[name] = &openIndex{spec: spec, ix: ix}
	return nil
}

func (db *DB) persistIndexMeta(name string, spec IndexSpec, ix *core.Index) error {
	sf, err := os.Create(db.schemePath(name))
	if err != nil {
		return err
	}
	if err := ix.Scheme.Write(sf); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	meta := fmt.Sprintf("window=%d\npool_pages=%d\n", spec.Window, spec.PoolPages)
	return os.WriteFile(db.metaPath(name), []byte(meta), 0o644)
}

// openIndexFiles attaches a persisted index during Open.
func (db *DB) openIndexFiles(name string) error {
	sf, err := os.Open(db.schemePath(name))
	if err != nil {
		return err
	}
	scheme, err := categorize.ReadScheme(sf)
	sf.Close()
	if err != nil {
		return err
	}
	window, poolPages, err := readIndexMeta(db.metaPath(name))
	if err != nil {
		return err
	}
	ix, err := core.OpenWith(db.data, scheme, db.treePath(name), poolPages, window, db.backend)
	if err != nil {
		return err
	}
	ix.DisableEnvelopes = db.envelopes == EnvelopesOff
	db.indexes[name] = &openIndex{
		spec: IndexSpec{
			Method:       Method(scheme.Kind()),
			Categories:   scheme.NumCategories(),
			Sparse:       ix.Tree.Sparse(),
			Window:       window,
			MinAnswerLen: ix.MinAnswerLen(),
			PoolPages:    poolPages,
			Encoding:     ix.Tree.Encoding(),
		},
		ix: ix,
	}
	return nil
}

// DropIndex closes and deletes an index.
func (db *DB) DropIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	oi, ok := db.indexes[name]
	if !ok {
		return errNoIndex(name)
	}
	delete(db.indexes, name)
	if err := oi.ix.Close(); err != nil {
		return err
	}
	return removeIndexFiles(db.metaPath(name), db.schemePath(name), db.treePath(name))
}

// Indexes lists the open indexes' names.
func (db *DB) Indexes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.indexes))
	for name := range db.indexes {
		out = append(out, name)
	}
	return out
}

// IndexInfo describes one index.
type IndexInfo struct {
	Name      string
	Spec      IndexSpec
	SizeBytes int64
	Leaves    uint64
	Nodes     uint64
}

// Index returns metadata for a named index.
func (db *DB) Index(name string) (IndexInfo, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oi, ok := db.indexes[name]
	if !ok {
		return IndexInfo{}, errNoIndex(name)
	}
	return IndexInfo{
		Name:      name,
		Spec:      oi.spec,
		SizeBytes: oi.ix.SizeBytes(),
		Leaves:    oi.ix.Tree.NumLeaves(),
		Nodes:     oi.ix.Tree.NumNodes(),
	}, nil
}

// Search runs a similarity search through the named index: every
// subsequence with time warping distance at most eps from q, sorted by
// (sequence, start, end). No false dismissals. Concurrent Search calls on
// the same index run in parallel on the one shared handle.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable searches use SearchCtx
func (db *DB) Search(indexName string, q []float64, eps float64) ([]Match, SearchStats, error) {
	return db.SearchCtx(context.Background(), indexName, q, eps)
}
