package seqdb

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestContextVariantsMatchPlainAPI pins that the Ctx entry points with a
// background context return exactly what the historical signatures do.
func TestContextVariantsMatchPlainAPI(t *testing.T) {
	db := newTestDB(t, 10, 60, 11)
	if err := db.BuildIndex("fast", IndexSpec{Method: MethodMaxEntropy, Categories: 10, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), db.Values("seq-2")[5:20]...)
	ctx := context.Background()

	want, _, err := db.Search("fast", q, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := db.SearchCtx(ctx, "fast", q, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("SearchCtx(background) differs from Search")
	}

	wantScan, _, err := db.SeqScan(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	gotScan, _, err := db.SeqScanCtx(ctx, q, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantScan, gotScan) {
		t.Fatal("SeqScanCtx(background) differs from SeqScan")
	}

	wantKNN, _, err := db.SearchKNN("fast", q, 4)
	if err != nil {
		t.Fatal(err)
	}
	gotKNN, _, err := db.SearchKNNCtx(ctx, "fast", q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantKNN, gotKNN) {
		t.Fatal("SearchKNNCtx(background) differs from SearchKNN")
	}
}

// TestContextCancellationAborts checks every Ctx entry point honors an
// already-canceled context and reports the context's error.
func TestContextCancellationAborts(t *testing.T) {
	db := newTestDB(t, 10, 60, 12)
	if err := db.BuildIndex("fast", IndexSpec{Method: MethodMaxEntropy, Categories: 10, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), db.Values("seq-1")[0:15]...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := db.SearchCtx(ctx, "fast", q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchCtx err = %v, want Canceled", err)
	}
	if _, err := db.SearchVisitCtx(ctx, "fast", q, 5, func(Match) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchVisitCtx err = %v, want Canceled", err)
	}
	if _, _, err := db.SearchKNNCtx(ctx, "fast", q, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchKNNCtx err = %v, want Canceled", err)
	}
	if _, _, err := db.SeqScanCtx(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SeqScanCtx err = %v, want Canceled", err)
	}

	// Unknown indexes are reported with the typed sentinel regardless of
	// context state.
	if _, _, err := db.SearchCtx(context.Background(), "nope", q, 5); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("unknown index err = %v, want ErrNoIndex", err)
	}
}

func TestImportCSVErrorPaths(t *testing.T) {
	db := newTestDB(t, 3, 20, 13)
	before := db.Len()

	// A malformed value must fail the whole import, importing nothing.
	if _, err := db.ImportCSV(strings.NewReader("x,1,2\ny,3,banana\n")); err == nil {
		t.Fatal("malformed value accepted")
	}
	if db.Len() != before {
		t.Fatalf("partial import after malformed value: %d -> %d", before, db.Len())
	}

	// A line with an id but no values is rejected with a line number.
	_, err := db.ImportCSV(strings.NewReader("x,1,2\nlonely\n"))
	if err == nil || !strings.Contains(err.Error(), "need id and at least one value") {
		t.Fatalf("short line err = %v", err)
	}
	if db.Len() != before {
		t.Fatal("partial import after short line")
	}

	// An id colliding with an existing sequence aborts before any rows land.
	if _, err := db.ImportCSV(strings.NewReader("fresh,1,2\nseq-1,3,4\n")); err == nil {
		t.Fatal("duplicate of stored sequence accepted")
	}
	if db.Len() != before || db.Values("fresh") != nil {
		t.Fatal("rows imported despite duplicate id")
	}

	// Duplicates within the CSV itself are caught too.
	if _, err := db.ImportCSV(strings.NewReader("twin,1,2\ntwin,3,4\n")); err == nil {
		t.Fatal("duplicate within CSV accepted")
	}
	if db.Len() != before {
		t.Fatal("rows imported despite in-file duplicate")
	}

	// Importing with indexes present is refused (they would go stale).
	if err := db.BuildIndex("fast", IndexSpec{Method: MethodMaxEntropy, Categories: 5, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ImportCSV(strings.NewReader("z,1,2\n")); err == nil {
		t.Fatal("import with live index accepted")
	}

	// After all the failures, a clean import still works once indexes drop.
	if err := db.DropIndex("fast"); err != nil {
		t.Fatal(err)
	}
	n, err := db.ImportCSV(strings.NewReader("z,1,2\n"))
	if err != nil || n != 1 {
		t.Fatalf("clean import after failures: n=%d err=%v", n, err)
	}
}

func TestSearchParallelEdgeCases(t *testing.T) {
	db := newTestDB(t, 8, 50, 14)
	if err := db.BuildIndex("fast", IndexSpec{Method: MethodMaxEntropy, Categories: 8, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	queries := [][]float64{
		db.Values("seq-0")[0:12],
		db.Values("seq-3")[10:25],
		db.Values("seq-5")[5:18],
	}
	want := make([][]Match, len(queries))
	for i, q := range queries {
		ms, _, err := db.Search("fast", q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ms
	}

	// workers <= 0 means "pick a sensible default", not "do nothing".
	for _, workers := range []int{0, -1, 1, 2} {
		got, err := db.SearchParallel("fast", queries, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: parallel results differ from serial", workers)
		}
	}

	// An empty batch is a no-op.
	if got, err := db.SearchParallel("fast", nil, 5, 4); err != nil || got != nil {
		t.Fatalf("empty batch: %v, %v", got, err)
	}

	// A bad query mid-batch fails the whole call rather than returning a
	// silently incomplete result set.
	bad := [][]float64{queries[0], {}, queries[2]}
	if _, err := db.SearchParallel("fast", bad, 5, 2); err == nil {
		t.Fatal("empty query mid-batch accepted")
	}

	if _, err := db.SearchParallel("nope", queries, 5, 2); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("unknown index err = %v, want ErrNoIndex", err)
	}
}
