package seqdb

import (
	"fmt"

	"twsearch/internal/disktree"
	"twsearch/internal/storage"
)

// Backend selects the page source index files are read through: the
// lock-striped LRU buffer pool (portable, bounded memory), a zero-copy mmap
// of the whole file, or automatic selection.
type Backend = storage.Backend

// The available storage backends. The zero value ("") means BackendPool.
const (
	BackendPool = storage.BackendPool
	BackendMmap = storage.BackendMmap
	BackendAuto = storage.BackendAuto
)

// ParseBackend validates a backend name from a flag or config value; the
// empty string is the pool default.
func ParseBackend(s string) (Backend, error) { return storage.ParseBackend(s) }

// Encoding selects the on-disk node record serialization of an index tree:
// v1 fixed-width (the default, readable by every version), v2 compact
// varints (smaller files), or v3 compact varints plus per-child envelope
// hulls (enables subtree-level lower-bound pruning). Existing indexes can
// be migrated either way with the twtree rewrite subcommand.
type Encoding = disktree.Encoding

// The available record encodings. The zero value means EncodingV1.
const (
	EncodingV1 = disktree.EncodingV1
	EncodingV2 = disktree.EncodingV2
	EncodingV3 = disktree.EncodingV3
)

// ParseEncoding validates an encoding name from a flag or config value; the
// empty string means EncodingV1.
func ParseEncoding(s string) (Encoding, error) { return disktree.ParseEncoding(s) }

// EnvelopeMode selects whether searches run the envelope lower-bound
// cascade before the DTW filter tables. The cascade never changes answers
// — only how much work a search does — so the zero value enables it.
type EnvelopeMode int

// The envelope-cascade modes. EnvelopesAuto and EnvelopesOn both run the
// cascade (Auto is the zero value, so the default is on); EnvelopesOff
// disables it, mainly for ablation runs and work-counter baselines.
const (
	EnvelopesAuto EnvelopeMode = iota
	EnvelopesOff
	EnvelopesOn
)

// ParseEnvelopeMode validates an envelope-mode name from a flag or config
// value; the empty string means EnvelopesAuto.
func ParseEnvelopeMode(s string) (EnvelopeMode, error) {
	switch s {
	case "", "auto":
		return EnvelopesAuto, nil
	case "off":
		return EnvelopesOff, nil
	case "on":
		return EnvelopesOn, nil
	}
	return EnvelopesAuto, fmt.Errorf("seqdb: unknown envelope mode %q (want auto, on, or off)", s)
}

// OpenOptions tunes how a database (or each shard of a sharded database) is
// opened.
type OpenOptions struct {
	// Backend selects the page source for every index tree ("" = pool).
	Backend Backend

	// Envelopes toggles the envelope lower-bound cascade on every index
	// opened or built through this handle (zero value = on).
	Envelopes EnvelopeMode
}
