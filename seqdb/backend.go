package seqdb

import (
	"twsearch/internal/disktree"
	"twsearch/internal/storage"
)

// Backend selects the page source index files are read through: the
// lock-striped LRU buffer pool (portable, bounded memory), a zero-copy mmap
// of the whole file, or automatic selection.
type Backend = storage.Backend

// The available storage backends. The zero value ("") means BackendPool.
const (
	BackendPool = storage.BackendPool
	BackendMmap = storage.BackendMmap
	BackendAuto = storage.BackendAuto
)

// ParseBackend validates a backend name from a flag or config value; the
// empty string is the pool default.
func ParseBackend(s string) (Backend, error) { return storage.ParseBackend(s) }

// Encoding selects the on-disk node record serialization of an index tree:
// v1 fixed-width (the default, readable by every version) or v2 compact
// varints (smaller files). Existing v1 indexes can be migrated with the
// twtree rewrite subcommand.
type Encoding = disktree.Encoding

// The available record encodings. The zero value means EncodingV1.
const (
	EncodingV1 = disktree.EncodingV1
	EncodingV2 = disktree.EncodingV2
)

// ParseEncoding validates an encoding name from a flag or config value; the
// empty string means EncodingV1.
func ParseEncoding(s string) (Encoding, error) { return disktree.ParseEncoding(s) }

// OpenOptions tunes how a database (or each shard of a sharded database) is
// opened.
type OpenOptions struct {
	// Backend selects the page source for every index tree ("" = pool).
	Backend Backend
}
