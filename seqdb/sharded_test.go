package seqdb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"twsearch/internal/shard"
)

// newShardedFrom partitions db into n shards under a fresh directory and
// builds the same index on every shard.
func newShardedFrom(t *testing.T, db *DB, n int, spec IndexSpec) *ShardedDB {
	t.Helper()
	sdb, err := db.PartitionInto(filepath.Join(t.TempDir(), "sharded"), n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	if err := sdb.BuildIndex("s", spec); err != nil {
		t.Fatal(err)
	}
	return sdb
}

// TestShardedByteIdentical is the subsystem's core contract: at every shard
// count, range searches, streamed visits, k-NN searches, and sequential
// scans return results deeply equal to the unsharded database — same
// matches, same exact distances, same order. Run under -race (make
// race-shard) this also exercises the scatter-gather concurrency.
func TestShardedByteIdentical(t *testing.T) {
	db := newTestDB(t, 11, 60, 3)
	spec := IndexSpec{Method: MethodMaxEntropy, Categories: 10, Sparse: true}
	if err := db.BuildIndex("s", spec); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	queries := make([][]float64, 6)
	for i := range queries {
		queries[i] = testValues(rng, 8)
	}
	const eps = 12.0

	for _, shards := range []int{1, 2, 3, 5} {
		sdb := newShardedFrom(t, db, shards, spec)
		for qi, q := range queries {
			name := fmt.Sprintf("shards=%d/q%d", shards, qi)

			want, _, err := db.Search("s", q, eps)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := sdb.Search("s", q, eps)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Search diverged\n got %v\nwant %v", name, got, want)
			}

			// The sharded visitor must stream exactly the materialized
			// answer set, in global (sequence, start, end) order.
			var visited []Match
			if _, err := sdb.SearchVisit("s", q, eps, func(m Match) bool {
				visited = append(visited, m)
				return true
			}); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(visited) != len(want) || (len(want) > 0 && !reflect.DeepEqual(visited, want)) {
				t.Errorf("%s: SearchVisit diverged from Search", name)
			}

			for _, k := range []int{1, 3, 7} {
				wantK, _, err := db.SearchKNN("s", q, k)
				if err != nil {
					t.Fatal(err)
				}
				gotK, _, err := sdb.SearchKNN("s", q, k)
				if err != nil {
					t.Fatalf("%s k=%d: %v", name, k, err)
				}
				if !reflect.DeepEqual(gotK, wantK) {
					t.Errorf("%s: SearchKNN(k=%d) diverged\n got %v\nwant %v", name, k, gotK, wantK)
				}
			}

			wantScan, _, err := db.SeqScan(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			gotScan, _, err := sdb.SeqScan(q, eps)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(gotScan, wantScan) {
				t.Errorf("%s: SeqScan diverged", name)
			}
		}
	}
}

// TestShardedVisitEarlyStop checks that a visitor returning false stops a
// sharded stream without error, delivering a prefix of the global order.
func TestShardedVisitEarlyStop(t *testing.T) {
	db := newTestDB(t, 6, 50, 5)
	spec := IndexSpec{Method: MethodMaxEntropy, Categories: 10, Sparse: true}
	if err := db.BuildIndex("s", spec); err != nil {
		t.Fatal(err)
	}
	sdb := newShardedFrom(t, db, 3, spec)
	q := db.Values("seq-0")[:8]

	full, _, err := sdb.Search("s", q, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Skipf("need at least 2 matches to test early stop, got %d", len(full))
	}
	var prefix []Match
	if _, err := sdb.SearchVisit("s", q, 15, func(m Match) bool {
		prefix = append(prefix, m)
		return len(prefix) < 2
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prefix, full[:2]) {
		t.Errorf("early-stopped stream %v is not a prefix of %v", prefix, full[:4])
	}
}

func TestShardedOpenAndTopology(t *testing.T) {
	db := newTestDB(t, 7, 40, 9)
	dir := filepath.Join(t.TempDir(), "sharded")
	sdb, err := db.PartitionInto(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()

	if !IsSharded(dir) {
		t.Error("IsSharded must detect the manifest")
	}
	if IsSharded(t.TempDir()) {
		t.Error("IsSharded on an empty dir")
	}
	if sdb.Len() != 7 || sdb.Shards() != 3 {
		t.Errorf("Len=%d Shards=%d, want 7 and 3", sdb.Len(), sdb.Shards())
	}
	want := []ShardRange{{Start: 0, Count: 3}, {Start: 3, Count: 2}, {Start: 5, Count: 2}}
	if got := sdb.ShardRanges(); !reflect.DeepEqual(got, want) {
		t.Errorf("ShardRanges = %v, want %v", got, want)
	}
	if got := sdb.SequenceIDs(); !reflect.DeepEqual(got, db.SequenceIDs()) {
		t.Errorf("SequenceIDs = %v, want the unsharded order", got)
	}
	// The unsharded topology answer: one range covering everything.
	if got := db.ShardRanges(); !reflect.DeepEqual(got, []ShardRange{{Start: 0, Count: 7}}) {
		t.Errorf("DB.ShardRanges = %v, want one full range", got)
	}
	// Stats must recombine to the single-pass summary.
	flat, merged := db.Stats(), sdb.Stats()
	if flat.Sequences != merged.Sequences || flat.TotalElements != merged.TotalElements ||
		flat.MinLen != merged.MinLen || flat.MaxLen != merged.MaxLen ||
		math.Abs(flat.MeanValue-merged.MeanValue) > 1e-9 ||
		math.Abs(flat.StdDev-merged.StdDev) > 1e-9 {
		t.Errorf("merged stats %+v diverge from unsharded %+v", merged, flat)
	}
}

func TestPartitionRejectsTooManyShards(t *testing.T) {
	db := newTestDB(t, 3, 30, 1)
	if _, err := db.PartitionInto(filepath.Join(t.TempDir(), "s"), 4); err == nil {
		t.Error("4 shards over 3 sequences must fail: every shard needs a sequence")
	}
}

// TestOpenShardedCorruption: any divergence between the manifest and the
// shard directories must be a loud open-time error, not silent misrouting.
func TestOpenShardedCorruption(t *testing.T) {
	db := newTestDB(t, 6, 30, 2)
	dir := filepath.Join(t.TempDir(), "sharded")
	sdb, err := db.PartitionInto(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	sdb.Close()
	manifest := filepath.Join(dir, shard.ManifestName)

	// Manifest says 3 sequences in shard 1, directory holds 3 but claims 4.
	if err := os.WriteFile(manifest,
		[]byte("shards=2\nassign=contiguous\nrange=0:0:2\nrange=1:2:4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir); err == nil {
		t.Error("count mismatch between manifest and shard dir must fail")
	}

	// Truncated manifest.
	if err := os.WriteFile(manifest, []byte("shards=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir); err == nil {
		t.Error("truncated manifest must fail")
	}

	// Manifest deleted: not a sharded root at all.
	if err := os.Remove(manifest); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir); err == nil {
		t.Error("missing manifest must fail")
	}

	// A manifest naming a shard directory that does not exist.
	if err := os.WriteFile(manifest,
		[]byte("shards=3\nassign=contiguous\nrange=0:0:3\nrange=1:3:2\nrange=2:5:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir); err == nil {
		t.Error("missing shard directory must fail")
	}
}

func TestShardedIndexLifecycle(t *testing.T) {
	db := newTestDB(t, 5, 40, 6)
	spec := IndexSpec{Method: MethodMaxEntropy, Categories: 8, Sparse: true}
	sdb, err := db.PartitionInto(filepath.Join(t.TempDir(), "s"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if err := sdb.BuildIndex("ix", spec); err != nil {
		t.Fatal(err)
	}
	if got := sdb.Indexes(); !reflect.DeepEqual(got, []string{"ix"}) {
		t.Errorf("Indexes = %v", got)
	}
	info, err := sdb.Index("ix")
	if err != nil {
		t.Fatal(err)
	}
	var wantLeaves uint64
	for i := 0; i < sdb.Shards(); i++ {
		ii, err := sdb.Shard(i).Index("ix")
		if err != nil {
			t.Fatal(err)
		}
		wantLeaves += ii.Leaves
	}
	if info.Leaves != wantLeaves {
		t.Errorf("aggregate Leaves = %d, want %d", info.Leaves, wantLeaves)
	}
	if err := sdb.DropIndex("ix"); err != nil {
		t.Fatal(err)
	}
	if err := sdb.DropIndex("ix"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("double drop: want ErrNoIndex, got %v", err)
	}
}

// TestShardedSearchContext checks deadline propagation into the fan-out.
func TestShardedSearchContext(t *testing.T) {
	db := newTestDB(t, 6, 40, 8)
	spec := IndexSpec{Method: MethodMaxEntropy, Categories: 8, Sparse: true}
	sdb := newShardedFrom(t, db, 2, spec)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := sdb.SearchCtx(ctx, "s", db.Values("seq-0")[:6], 5)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled through the fan-out, got %v", err)
	}
}

func TestMergeStatsMoments(t *testing.T) {
	// Hand-computable recombination: two parts whose union is {1..6} as one
	// sequence of six elements... simpler: verify against a direct
	// computation over the concatenated population.
	vals := [][]float64{{1, 2, 3}, {10, 20, 30, 40}}
	parts := make([]Stats, len(vals))
	var all []float64
	for i, vs := range vals {
		parts[i] = statsOf(vs)
		all = append(all, vs...)
	}
	got := MergeStats(parts)
	want := statsOf(all)
	if math.Abs(got.MeanValue-want.MeanValue) > 1e-9 || math.Abs(got.StdDev-want.StdDev) > 1e-9 {
		t.Errorf("merged mean/stddev %.6f/%.6f, want %.6f/%.6f",
			got.MeanValue, got.StdDev, want.MeanValue, want.StdDev)
	}
	if got.TotalElements != want.TotalElements ||
		math.Abs(got.MinValue-want.MinValue) > 0 || math.Abs(got.MaxValue-want.MaxValue) > 0 {
		t.Errorf("merged %+v, want %+v", got, want)
	}
	// Empty parts are identity elements.
	if m := MergeStats([]Stats{{}, parts[0], {}}); m.TotalElements != parts[0].TotalElements {
		t.Errorf("empty parts changed the merge: %+v", m)
	}
}

// statsOf computes a population's summary the direct way.
func statsOf(vs []float64) Stats {
	st := Stats{Sequences: 1, TotalElements: len(vs), MinLen: len(vs), MaxLen: len(vs), AvgLen: float64(len(vs))}
	st.MinValue, st.MaxValue = vs[0], vs[0]
	sum := 0.0
	for _, v := range vs {
		st.MinValue = math.Min(st.MinValue, v)
		st.MaxValue = math.Max(st.MaxValue, v)
		sum += v
	}
	st.MeanValue = sum / float64(len(vs))
	varSum := 0.0
	for _, v := range vs {
		varSum += (v - st.MeanValue) * (v - st.MeanValue)
	}
	st.StdDev = math.Sqrt(varSum / float64(len(vs)))
	return st
}
