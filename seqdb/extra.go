package seqdb

import (
	"context"
	"fmt"
	"io"
	"sync"

	"twsearch/internal/categorize"
	"twsearch/internal/core"
	"twsearch/internal/dtw"
	"twsearch/internal/sequence"
)

// SearchKNN returns the k subsequences nearest to q under the time warping
// distance, through the named index. See the range Search for the matching
// semantics; nearest-neighbor search expands the threshold until k answers
// are certain.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable k-NN uses SearchKNNCtx
func (db *DB) SearchKNN(indexName string, q []float64, k int) ([]Match, SearchStats, error) {
	return db.SearchKNNCtx(context.Background(), indexName, q, k)
}

// SearchParallel runs one range search per query concurrently. The workers
// share the index's one warmed handle — searches are natively concurrent
// (pooled query contexts over a lock-striped buffer pool), so no per-worker
// duplicate is opened and every worker benefits from the shared page cache.
// Results are returned in query order. workers <= 0 means one worker per
// query, capped at 8.
//
//twlint:ctx-root public batch wrapper with no caller deadline; each worker roots the batch's shared lifetime
func (db *DB) SearchParallel(indexName string, queries [][]float64, eps float64, workers int) ([][]Match, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oi, ok := db.indexes[indexName]
	if !ok {
		return nil, errNoIndex(indexName)
	}
	if workers <= 0 {
		workers = len(queries)
		if workers > 8 {
			workers = 8
		}
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 0 {
		return nil, nil
	}

	results := make([][]Match, len(queries))
	errs := make([]error, workers)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				ms, _, err := oi.ix.SearchCtx(context.Background(), queries[j], eps)
				if err != nil {
					errs[w] = err
					continue
				}
				results[j] = db.publicMatches(ms)
			}
		}(w)
	}
	for j := range queries {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AlignmentStep records that query element QueryIndex was matched to the
// sequence element at absolute position SeqIndex by the optimal warping
// path.
type AlignmentStep struct {
	QueryIndex int
	SeqIndex   int
}

// Align recomputes a match's optimal warping path against the query —
// Figure 1(b)'s element mapping — so callers can explain which elements
// were stretched or compressed. It returns the exact distance (equal to the
// match's Distance for an unconstrained index) and the path in forward
// order.
func (db *DB) Align(m Match, q []float64) (float64, []AlignmentStep, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	vals := db.valuesByID(m.SeqID)
	if vals == nil {
		return 0, nil, fmt.Errorf("seqdb: no sequence %q", m.SeqID)
	}
	if m.Start < 0 || m.End > len(vals) || m.Start >= m.End {
		return 0, nil, fmt.Errorf("seqdb: match range [%d,%d) out of bounds of %q", m.Start, m.End, m.SeqID)
	}
	if len(q) == 0 {
		return 0, nil, fmt.Errorf("seqdb: empty query")
	}
	dist, pairs := dtw.Align(vals[m.Start:m.End], q)
	steps := make([]AlignmentStep, len(pairs))
	for i, p := range pairs {
		steps[i] = AlignmentStep{QueryIndex: p.Y, SeqIndex: m.Start + p.X}
	}
	return dist, steps, nil
}

// CostModel re-exports the Section 5.1 weighting of query time against
// index space used by SelectCategories.
type CostModel = categorize.CostModel

// CategoryMeasure is one trial of SelectCategories: the candidate count,
// its average query seconds, and its index size in KB.
type CategoryMeasure = categorize.Measure

// SelectCategories implements the paper's category-count selection: it
// builds a trial index per candidate count (with the given spec's method
// and sparsity), measures average query time at eps over the sample
// queries and the index size, and returns the count minimizing
// model.Wt*seconds + model.Ws*KB, along with every measurement.
func (db *DB) SelectCategories(spec IndexSpec, counts []int, queries [][]float64, eps float64, model CostModel) (int, []CategoryMeasure, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	spec = spec.withDefaults()
	best, measures, err := core.SelectCategories(db.data, queries, eps, counts, model,
		core.Options{
			Kind:         categorize.Kind(spec.Method),
			Sparse:       spec.Sparse,
			Window:       spec.Window,
			MinAnswerLen: spec.MinAnswerLen,
		}, db.dir)
	if err != nil {
		return 0, nil, err
	}
	return best.Count, measures, nil
}

// ExportCSV writes every sequence as an id,v1,v2,... line — a portable dump
// readable by ImportCSV and by cmd/seqdbctl import.
func (db *DB) ExportCSV(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data.WriteCSV(w)
}

// ImportCSV appends all sequences from an id,v1,v2,... stream (blank lines
// and '#' comments skipped). Like Add, it is rejected while indexes exist.
// On a malformed line nothing is imported.
func (db *DB) ImportCSV(r io.Reader) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.indexes) > 0 {
		return 0, fmt.Errorf("seqdb: cannot import while indexes exist; drop indexes first")
	}
	parsed, err := sequence.ReadCSV(r)
	if err != nil {
		return 0, err
	}
	// Validate every id against the current dataset before mutating.
	for i := 0; i < parsed.Len(); i++ {
		if db.data.ByID(parsed.Seq(i).ID) >= 0 {
			return 0, fmt.Errorf("seqdb: sequence %q already exists", parsed.Seq(i).ID)
		}
	}
	for i := 0; i < parsed.Len(); i++ {
		s := parsed.Seq(i)
		if _, err := db.data.Add(s); err != nil {
			return i, err
		}
	}
	return parsed.Len(), nil
}

// SearchVisit streams answers to fn instead of materializing them: fn is
// called once per answer (unordered); returning false stops the search.
// Use it when a permissive threshold would produce answer sets too large
// to hold in memory.
//
//twlint:ctx-root public compatibility wrapper for pre-context callers; cancellable streaming uses SearchVisitCtx
func (db *DB) SearchVisit(indexName string, q []float64, eps float64, fn func(Match) bool) (SearchStats, error) {
	return db.SearchVisitCtx(context.Background(), indexName, q, eps, fn)
}
