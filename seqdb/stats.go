package seqdb

import "sort"

// PoolShardStats is one buffer-pool shard's hit/miss/eviction counters.
type PoolShardStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// IndexPoolStats reports one index's lock-striped buffer pool, shard by
// shard; under concurrent searches an even spread of hits across shards is
// the sign the striping is doing its job.
type IndexPoolStats struct {
	Index  string
	Shards []PoolShardStats
}

// PoolStats returns per-shard buffer pool counters for every open index,
// sorted by index name.
func (db *DB) PoolStats() []IndexPoolStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]IndexPoolStats, 0, len(db.indexes))
	for name, oi := range db.indexes {
		ss := oi.ix.Tree.PoolShardStats()
		shards := make([]PoolShardStats, len(ss))
		for i, s := range ss {
			shards[i] = PoolShardStats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions}
		}
		out = append(out, IndexPoolStats{Index: name, Shards: shards})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
