package seqdb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

func vecSeq(rng *rand.Rand, n, dim int) [][]float64 {
	points := make([][]float64, n)
	v := make([]float64, dim)
	for k := range v {
		v[k] = float64(rng.Intn(10))
	}
	for i := range points {
		p := make([]float64, dim)
		for k := range p {
			v[k] += float64(rng.Intn(3) - 1)
			p[k] = v[k]
		}
		points[i] = p
	}
	return points
}

func newVectorTestDB(t *testing.T, nSeq, seqLen, dim int, seed int64) *VectorDB {
	t.Helper()
	db, err := CreateVector(filepath.Join(t.TempDir(), "vdb"), dim)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nSeq; i++ {
		if err := db.Add(fmt.Sprintf("vec-%d", i), vecSeq(rng, seqLen, dim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestVectorDBLifecycle(t *testing.T) {
	db := newVectorTestDB(t, 5, 30, 2, 21)
	if db.Dim() != 2 || db.Len() != 5 {
		t.Fatalf("dim=%d len=%d", db.Dim(), db.Len())
	}
	if err := db.BuildIndex("g", VectorIndexSpec{CatsPerDim: 5, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("late", [][]float64{{1, 2}}); err == nil {
		t.Fatal("Add with live index accepted")
	}

	q := append([][]float64{}, db.Points("vec-1")[5:12]...)
	got, err := db.Search("g", q, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.SeqScan(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("index %d matches, scan %d", len(got), len(want))
	}
	found := false
	for _, m := range got {
		if m.SeqID == "vec-1" && m.Start == 5 && m.End == 12 && m.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("verbatim vector query not found at distance 0")
	}

	knn, err := db.SearchKNN("g", q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(knn) != 3 || knn[0].Distance != 0 && knn[1].Distance != 0 && knn[2].Distance != 0 {
		t.Fatalf("kNN wrong: %+v", knn)
	}
}

func TestVectorDBPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "vdb")
	db, err := CreateVector(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 4; i++ {
		if err := db.Add(fmt.Sprintf("v%d", i), vecSeq(rng, 20, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("a", VectorIndexSpec{CatsPerDim: 4, Sparse: true, Window: 6}); err != nil {
		t.Fatal(err)
	}
	q := append([][]float64{}, db.Points("v0")[3:9]...)
	want, err := db.Search("a", q, 8)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	re, err := OpenVector(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Dim() != 3 || re.Len() != 4 {
		t.Fatalf("reopened dim=%d len=%d", re.Dim(), re.Len())
	}
	if !reflect.DeepEqual(re.Indexes(), []string{"a"}) {
		t.Fatalf("indexes = %v", re.Indexes())
	}
	got, err := re.Search("a", q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("windowed vector index differs after reopen")
	}

	if err := re.DropIndex("a"); err != nil {
		t.Fatal(err)
	}
	if err := re.Add("v99", vecSeq(rng, 5, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestVectorDBValidation(t *testing.T) {
	if _, err := CreateVector(filepath.Join(t.TempDir(), "z"), 0); err == nil {
		t.Error("dim 0 accepted")
	}
	dir := filepath.Join(t.TempDir(), "vdb")
	db, err := CreateVector(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := CreateVector(dir, 2); err == nil {
		t.Error("double create accepted")
	}
	if err := db.BuildIndex("x", VectorIndexSpec{}); err == nil {
		t.Error("indexing empty vector db accepted")
	}
	if err := db.Add("a", [][]float64{{1}}); err == nil {
		t.Error("wrong-dim points accepted")
	}
	if err := db.Add("a", [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("bad name", VectorIndexSpec{}); err == nil {
		t.Error("bad index name accepted")
	}
	if err := db.BuildIndex("x", VectorIndexSpec{}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("x", VectorIndexSpec{}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := db.Search("nope", [][]float64{{1, 2}}, 1); err == nil {
		t.Error("unknown index accepted")
	}
	if _, err := db.SearchKNN("nope", [][]float64{{1, 2}}, 1); err == nil {
		t.Error("unknown index accepted for kNN")
	}
	if err := db.DropIndex("nope"); err == nil {
		t.Error("dropping unknown index accepted")
	}
	if db.Points("ghost") != nil {
		t.Error("Points of absent id not nil")
	}
}

func TestVectorDBAddCopiesPoints(t *testing.T) {
	db := newVectorTestDB(t, 0, 0, 2, 23)
	pts := [][]float64{{1, 2}, {3, 4}}
	if err := db.Add("a", pts); err != nil {
		t.Fatal(err)
	}
	pts[0][0] = 99
	if db.Points("a")[0][0] != 1 {
		t.Fatal("Add aliased the caller's points")
	}
}
