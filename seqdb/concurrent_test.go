package seqdb

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentSearches runs range searches, kNN searches, streaming
// visits and metadata reads in parallel against one DB. Under -race this
// exercises the db.mu / per-index locking; the answers must match a serial
// run exactly.
func TestConcurrentSearches(t *testing.T) {
	db := newTestDB(t, 6, 50, 7)
	if err := db.BuildIndex("c", IndexSpec{Method: MethodMaxEntropy, Categories: 10, Sparse: true}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(8))
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = testValues(rng, 8)
	}
	const eps = 12.0
	want := make([][]Match, len(queries))
	for i, q := range queries {
		ms, _, err := db.Search("c", q, eps)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ms
	}

	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q []float64) {
			defer wg.Done()
			ms, _, err := db.Search("c", q, eps)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if !reflect.DeepEqual(ms, want[i]) {
				t.Errorf("query %d: concurrent answers differ from serial", i)
			}
		}(i, q)
		wg.Add(1)
		go func(q []float64) {
			defer wg.Done()
			if _, _, err := db.SearchKNN("c", q, 3); err != nil {
				t.Errorf("knn: %v", err)
			}
		}(q)
		wg.Add(1)
		go func(q []float64) {
			defer wg.Done()
			n := 0
			if _, err := db.SearchVisit("c", q, eps, func(Match) bool { n++; return true }); err != nil {
				t.Errorf("visit: %v", err)
			}
		}(q)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = db.Len()
			_ = db.SequenceIDs()
			_ = db.Values("seq-0")
			_ = db.Indexes()
			if _, err := db.Index("c"); err != nil {
				t.Errorf("index info: %v", err)
			}
		}()
	}
	wg.Wait()
}

// sameMatches reports byte-identity: every field equal and the distance
// equal down to its IEEE-754 bits (reflect.DeepEqual would treat -0 and +0
// as equal; the contract here is stricter).
func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].SeqID != b[i].SeqID || a[i].Seq != b[i].Seq ||
			a[i].Start != b[i].Start || a[i].End != b[i].End ||
			math.Float64bits(a[i].Distance) != math.Float64bits(b[i].Distance) {
			return false
		}
	}
	return true
}

// TestConcurrentHammerOneHandle drives many goroutines through one warmed
// handle, each replaying the full query batch several times with a mix of
// Search, SearchVisitCtx, and SearchKNN. Every answer must be byte-identical
// to the serial baseline: the pooled query contexts may be reused in any
// order by any goroutine and must never leak state between queries.
func TestConcurrentHammerOneHandle(t *testing.T) {
	db := newTestDB(t, 8, 60, 21)
	if err := db.BuildIndex("h", IndexSpec{Method: MethodMaxEntropy, Categories: 10, Sparse: true}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(22))
	queries := make([][]float64, 6)
	for i := range queries {
		queries[i] = testValues(rng, 6+i)
	}
	const eps = 14.0
	const k = 4

	wantRange := make([][]Match, len(queries))
	wantKNN := make([][]Match, len(queries))
	for i, q := range queries {
		ms, _, err := db.Search("h", q, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantRange[i] = ms
		ks, _, err := db.SearchKNN("h", q, k)
		if err != nil {
			t.Fatal(err)
		}
		wantKNN[i] = ks
	}

	const workers = 8
	const rounds = 3
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, q := range queries {
					switch (w + r + i) % 3 {
					case 0:
						ms, _, err := db.SearchCtx(ctx, "h", q, eps)
						if err != nil {
							t.Errorf("worker %d search %d: %v", w, i, err)
							return
						}
						if !sameMatches(ms, wantRange[i]) {
							t.Errorf("worker %d search %d: answers differ from serial", w, i)
							return
						}
					case 1:
						var got []Match
						_, err := db.SearchVisitCtx(ctx, "h", q, eps, func(m Match) bool {
							got = append(got, m)
							return true
						})
						if err != nil {
							t.Errorf("worker %d visit %d: %v", w, i, err)
							return
						}
						// Visit streams in discovery order, not sorted
						// order: compare as sets.
						if len(got) != len(wantRange[i]) {
							t.Errorf("worker %d visit %d: %d matches, want %d",
								w, i, len(got), len(wantRange[i]))
							return
						}
						want := make(map[Match]bool, len(wantRange[i]))
						for _, m := range wantRange[i] {
							want[m] = true
						}
						for _, m := range got {
							if !want[m] {
								t.Errorf("worker %d visit %d: unexpected match %+v", w, i, m)
								return
							}
						}
					case 2:
						ks, _, err := db.SearchKNNCtx(ctx, "h", q, k)
						if err != nil {
							t.Errorf("worker %d knn %d: %v", w, i, err)
							return
						}
						if !sameMatches(ks, wantKNN[i]) {
							t.Errorf("worker %d knn %d: answers differ from serial", w, i)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkSearchConcurrent measures range-search throughput on one shared
// warmed handle under b.RunParallel. Compare -cpu 1,4 runs: the refactor's
// acceptance bar is that adding workers adds throughput on one handle.
func BenchmarkSearchConcurrent(b *testing.B) {
	db, err := Create(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 12; i++ {
		if err := db.Add(fmt.Sprintf("seq-%d", i), testValues(rng, 120)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.BuildIndex("b", IndexSpec{Method: MethodMaxEntropy, Categories: 12, Sparse: true}); err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = testValues(rng, 8)
	}
	const eps = 10.0
	if _, _, err := db.Search("b", queries[0], eps); err != nil { // warm the pool
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := db.Search("b", queries[i%len(queries)], eps); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// TestConcurrentBuildDrop interleaves searches through one index with
// building and dropping another: mutations must serialize against the
// readers without corrupting either index.
func TestConcurrentBuildDrop(t *testing.T) {
	db := newTestDB(t, 5, 40, 9)
	if err := db.BuildIndex("stable", IndexSpec{Method: MethodMaxEntropy, Categories: 8}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	q := testValues(rng, 7)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 3; round++ {
			name := fmt.Sprintf("tmp-%d", round)
			if err := db.BuildIndex(name, IndexSpec{Method: MethodEqualLength, Categories: 6}); err != nil {
				t.Errorf("build %s: %v", name, err)
				return
			}
			if err := db.DropIndex(name); err != nil {
				t.Errorf("drop %s: %v", name, err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				if _, _, err := db.Search("stable", q, 10); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
