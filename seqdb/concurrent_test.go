package seqdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentSearches runs range searches, kNN searches, streaming
// visits and metadata reads in parallel against one DB. Under -race this
// exercises the db.mu / per-index locking; the answers must match a serial
// run exactly.
func TestConcurrentSearches(t *testing.T) {
	db := newTestDB(t, 6, 50, 7)
	if err := db.BuildIndex("c", IndexSpec{Method: MethodMaxEntropy, Categories: 10, Sparse: true}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(8))
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = testValues(rng, 8)
	}
	const eps = 12.0
	want := make([][]Match, len(queries))
	for i, q := range queries {
		ms, _, err := db.Search("c", q, eps)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ms
	}

	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q []float64) {
			defer wg.Done()
			ms, _, err := db.Search("c", q, eps)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if !reflect.DeepEqual(ms, want[i]) {
				t.Errorf("query %d: concurrent answers differ from serial", i)
			}
		}(i, q)
		wg.Add(1)
		go func(q []float64) {
			defer wg.Done()
			if _, _, err := db.SearchKNN("c", q, 3); err != nil {
				t.Errorf("knn: %v", err)
			}
		}(q)
		wg.Add(1)
		go func(q []float64) {
			defer wg.Done()
			n := 0
			if _, err := db.SearchVisit("c", q, eps, func(Match) bool { n++; return true }); err != nil {
				t.Errorf("visit: %v", err)
			}
		}(q)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = db.Len()
			_ = db.SequenceIDs()
			_ = db.Values("seq-0")
			_ = db.Indexes()
			if _, err := db.Index("c"); err != nil {
				t.Errorf("index info: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentBuildDrop interleaves searches through one index with
// building and dropping another: mutations must serialize against the
// readers without corrupting either index.
func TestConcurrentBuildDrop(t *testing.T) {
	db := newTestDB(t, 5, 40, 9)
	if err := db.BuildIndex("stable", IndexSpec{Method: MethodMaxEntropy, Categories: 8}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	q := testValues(rng, 7)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 3; round++ {
			name := fmt.Sprintf("tmp-%d", round)
			if err := db.BuildIndex(name, IndexSpec{Method: MethodEqualLength, Categories: 6}); err != nil {
				t.Errorf("build %s: %v", name, err)
				return
			}
			if err := db.DropIndex(name); err != nil {
				t.Errorf("drop %s: %v", name, err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				if _, _, err := db.Search("stable", q, 10); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
