package seqdb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadIndexMeta(t *testing.T) {
	write := func(content string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "idx-x.meta")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("missing file yields defaults", func(t *testing.T) {
		w, pp, err := readIndexMeta(filepath.Join(t.TempDir(), "absent.meta"))
		if err != nil || w != -1 || pp != 0 {
			t.Fatalf("got (%d, %d, %v), want (-1, 0, nil)", w, pp, err)
		}
	})
	t.Run("valid values parse", func(t *testing.T) {
		w, pp, err := readIndexMeta(write("window=8\npool_pages=32\n"))
		if err != nil || w != 8 || pp != 32 {
			t.Fatalf("got (%d, %d, %v), want (8, 32, nil)", w, pp, err)
		}
	})
	t.Run("unknown keys and non-kv lines are ignored", func(t *testing.T) {
		w, pp, err := readIndexMeta(write("future_knob=yes\njust a note\n\nwindow=3\n"))
		if err != nil || w != 3 || pp != 0 {
			t.Fatalf("got (%d, %d, %v), want (3, 0, nil)", w, pp, err)
		}
	})
	t.Run("malformed window is an error", func(t *testing.T) {
		_, _, err := readIndexMeta(write("window=abc\n"))
		if err == nil || !strings.Contains(err.Error(), "bad window value") {
			t.Fatalf("err = %v, want bad window value", err)
		}
	})
	t.Run("malformed pool_pages is an error", func(t *testing.T) {
		_, _, err := readIndexMeta(write("window=4\npool_pages=12x\n"))
		if err == nil || !strings.Contains(err.Error(), "bad pool_pages value") {
			t.Fatalf("err = %v, want bad pool_pages value", err)
		}
	})
}

// TestOpenRejectsMalformedMeta corrupts a persisted index's meta file and
// checks that reopening fails loudly instead of silently falling back to
// default window semantics.
func TestOpenRejectsMalformedMeta(t *testing.T) {
	db := newTestDB(t, 4, 30, 41)
	if err := db.BuildIndex("m", IndexSpec{Method: MethodMaxEntropy, Categories: 6, Window: 2}); err != nil {
		t.Fatal(err)
	}
	dir := db.Dir()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, "idx-m.meta")
	if err := os.WriteFile(metaPath, []byte("window=oops\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "bad window value") {
		t.Fatalf("Open = %v, want bad window value error", err)
	}
}

// TestDropIndexReportsRemoveErrors makes one of the index files
// unremovable (a non-empty directory in its place) and checks DropIndex
// reports the failure while still removing the other files.
func TestDropIndexReportsRemoveErrors(t *testing.T) {
	db := newTestDB(t, 4, 30, 42)
	if err := db.BuildIndex("d", IndexSpec{Method: MethodMaxEntropy, Categories: 6}); err != nil {
		t.Fatal(err)
	}
	schemePath := db.schemePath("d")
	if err := os.Remove(schemePath); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(schemePath, "blocker"), 0o755); err != nil {
		t.Fatal(err)
	}
	err := db.DropIndex("d")
	if err == nil || !strings.Contains(err.Error(), "idx-d.cat") {
		t.Fatalf("DropIndex = %v, want error naming the scheme file", err)
	}
	// The removable files must still be gone: partial cleanup is reported,
	// not abandoned.
	for _, p := range []string{db.metaPath("d"), db.treePath("d")} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s still present after DropIndex", p)
		}
	}
	// And the index is gone from the handle regardless.
	if _, err := db.Index("d"); err == nil {
		t.Error("index still listed after DropIndex")
	}
}
