package seqdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"twsearch/internal/categorize"
	"twsearch/internal/multivar"
)

// VectorDB is the multivariate counterpart of DB: sequences of fixed-
// dimension vectors (trajectories, multi-channel signals), indexed with the
// same suffix-tree machinery through an MTAH-style grid categorization —
// the paper's conclusion-section extension. A VectorDB is not safe for
// concurrent use.
type VectorDB struct {
	dir     string
	data    *multivar.Dataset
	indexes map[string]*openVectorIndex
}

type openVectorIndex struct {
	spec VectorIndexSpec
	ix   *multivar.Index
}

// VectorMatch is one multivariate answer subsequence.
type VectorMatch struct {
	SeqID    string
	Seq      int
	Start    int
	End      int
	Distance float64
}

// VectorIndexSpec describes a multivariate index.
type VectorIndexSpec struct {
	// Method is the per-dimension categorization method (default ME).
	Method Method
	// CatsPerDim is the per-dimension category count (default 8); the grid
	// has at most CatsPerDim^dim cells, of which only observed ones are
	// materialized.
	CatsPerDim int
	// Sparse selects the sparse suffix tree.
	Sparse bool
	// Window, when positive, applies a Sakoe–Chiba band of that half-width.
	Window int
	// MinAnswerLen, when > 1, skips suffixes shorter than this and floors
	// answer lengths.
	MinAnswerLen int
	// PoolPages bounds the buffer pool (0 = default).
	PoolPages int
}

const vectorDataFileName = "vectors.twvdb"

// CreateVector initializes a new vector database for dim-dimensional
// points in dir.
func CreateVector(dir string, dim int) (*VectorDB, error) {
	if dim < 1 {
		return nil, errors.New("seqdb: dimension must be >= 1")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dataPath := filepath.Join(dir, vectorDataFileName)
	if _, err := os.Stat(dataPath); err == nil {
		return nil, fmt.Errorf("seqdb: %s already holds a vector database", dir)
	}
	db := &VectorDB{dir: dir, data: multivar.NewDataset(dim), indexes: map[string]*openVectorIndex{}}
	if err := db.Save(); err != nil {
		return nil, err
	}
	return db, nil
}

// OpenVector loads an existing vector database and its indexes.
func OpenVector(dir string) (*VectorDB, error) {
	data, err := multivar.LoadFile(filepath.Join(dir, vectorDataFileName))
	if err != nil {
		return nil, fmt.Errorf("seqdb: loading vector dataset: %w", err)
	}
	db := &VectorDB{dir: dir, data: data, indexes: map[string]*openVectorIndex{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "vidx-") || !strings.HasSuffix(name, ".twt") {
			continue
		}
		idxName := strings.TrimSuffix(strings.TrimPrefix(name, "vidx-"), ".twt")
		if err := db.openIndexFiles(idxName); err != nil {
			db.Close()
			return nil, fmt.Errorf("seqdb: opening vector index %q: %w", idxName, err)
		}
	}
	return db, nil
}

// Close releases every open index.
func (db *VectorDB) Close() error {
	var first error
	for _, oi := range db.indexes {
		if err := oi.ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	db.indexes = map[string]*openVectorIndex{}
	return first
}

// Dim returns the point dimensionality.
func (db *VectorDB) Dim() int { return db.data.Dim() }

// Len returns the number of sequences.
func (db *VectorDB) Len() int { return db.data.Len() }

// Add appends a vector sequence (points are copied). Like DB.Add, it is
// rejected while indexes exist.
func (db *VectorDB) Add(id string, points [][]float64) error {
	if len(db.indexes) > 0 {
		return errors.New("seqdb: cannot add sequences while vector indexes exist; drop them first")
	}
	copied := make([][]float64, len(points))
	for i, p := range points {
		copied[i] = append([]float64(nil), p...)
	}
	_, err := db.data.Add(multivar.Sequence{ID: id, Points: copied})
	return err
}

// Save persists the vector dataset.
func (db *VectorDB) Save() error {
	return db.data.SaveFile(filepath.Join(db.dir, vectorDataFileName))
}

// Points returns the samples of the sequence with the given id, or nil.
func (db *VectorDB) Points(id string) [][]float64 {
	for i := 0; i < db.data.Len(); i++ {
		if db.data.Seq(i).ID == id {
			return db.data.Points(i)
		}
	}
	return nil
}

func (db *VectorDB) treePath(name string) string {
	return filepath.Join(db.dir, "vidx-"+name+".twt")
}

func (db *VectorDB) gridPath(name string) string {
	return filepath.Join(db.dir, "vidx-"+name+".grid")
}

func (db *VectorDB) metaPath(name string) string {
	return filepath.Join(db.dir, "vidx-"+name+".meta")
}

// BuildIndex builds and persists a multivariate index.
func (db *VectorDB) BuildIndex(name string, spec VectorIndexSpec) error {
	if err := validIndexName(name); err != nil {
		return err
	}
	if _, exists := db.indexes[name]; exists {
		return fmt.Errorf("seqdb: vector index %q already exists", name)
	}
	if db.data.Len() == 0 {
		return errors.New("seqdb: cannot index an empty vector database")
	}
	if spec.Method == "" {
		spec.Method = MethodMaxEntropy
	}
	if spec.CatsPerDim == 0 {
		spec.CatsPerDim = 8
	}
	ix, err := multivar.Build(db.data, db.treePath(name), multivar.Options{
		Kind:         categorize.Kind(spec.Method),
		CatsPerDim:   spec.CatsPerDim,
		Sparse:       spec.Sparse,
		Window:       spec.Window,
		MinAnswerLen: spec.MinAnswerLen,
	})
	if err != nil {
		return err
	}
	gf, err := os.Create(db.gridPath(name))
	if err != nil {
		ix.Close()
		os.Remove(db.treePath(name))
		return err
	}
	if err := ix.Grid.Write(gf); err != nil {
		gf.Close()
		ix.Close()
		os.Remove(db.treePath(name))
		return err
	}
	if err := gf.Close(); err != nil {
		ix.Close()
		os.Remove(db.treePath(name))
		return err
	}
	meta := fmt.Sprintf("window=%d\npool_pages=%d\n", ix.Window, spec.PoolPages)
	if err := os.WriteFile(db.metaPath(name), []byte(meta), 0o644); err != nil {
		ix.Close()
		os.Remove(db.treePath(name))
		os.Remove(db.gridPath(name))
		return err
	}
	db.indexes[name] = &openVectorIndex{spec: spec, ix: ix}
	return nil
}

func (db *VectorDB) openIndexFiles(name string) error {
	gf, err := os.Open(db.gridPath(name))
	if err != nil {
		return err
	}
	grid, err := multivar.ReadGrid(gf)
	gf.Close()
	if err != nil {
		return err
	}
	window, poolPages, err := readIndexMeta(db.metaPath(name))
	if err != nil {
		return err
	}
	ix, err := multivar.Open(db.data, grid, db.treePath(name), poolPages, window)
	if err != nil {
		return err
	}
	db.indexes[name] = &openVectorIndex{
		spec: VectorIndexSpec{
			Sparse:       ix.Tree.Sparse(),
			Window:       window,
			MinAnswerLen: ix.MinAnswerLen(),
			PoolPages:    poolPages,
		},
		ix: ix,
	}
	return nil
}

// DropIndex closes and deletes a vector index.
func (db *VectorDB) DropIndex(name string) error {
	oi, ok := db.indexes[name]
	if !ok {
		return fmt.Errorf("seqdb: no vector index %q", name)
	}
	delete(db.indexes, name)
	if err := oi.ix.Close(); err != nil {
		return err
	}
	return removeIndexFiles(db.metaPath(name), db.gridPath(name), db.treePath(name))
}

// Indexes lists the open vector indexes.
func (db *VectorDB) Indexes() []string {
	out := make([]string, 0, len(db.indexes))
	for name := range db.indexes {
		out = append(out, name)
	}
	return out
}

// Search returns every subsequence within time warping distance eps of the
// vector query, with no false dismissals.
func (db *VectorDB) Search(indexName string, q [][]float64, eps float64) ([]VectorMatch, error) {
	oi, ok := db.indexes[indexName]
	if !ok {
		return nil, fmt.Errorf("seqdb: no vector index %q", indexName)
	}
	ms, _, err := oi.ix.Search(q, eps)
	if err != nil {
		return nil, err
	}
	return db.publicMatches(ms), nil
}

// SearchKNN returns the k nearest vector subsequences.
func (db *VectorDB) SearchKNN(indexName string, q [][]float64, k int) ([]VectorMatch, error) {
	oi, ok := db.indexes[indexName]
	if !ok {
		return nil, fmt.Errorf("seqdb: no vector index %q", indexName)
	}
	ms, _, err := oi.ix.SearchKNN(q, k)
	if err != nil {
		return nil, err
	}
	return db.publicMatches(ms), nil
}

// SeqScan runs the exhaustive multivariate baseline.
func (db *VectorDB) SeqScan(q [][]float64, eps float64) ([]VectorMatch, error) {
	ms, _, err := multivar.SeqScan(db.data, q, eps, -1)
	if err != nil {
		return nil, err
	}
	return db.publicMatches(ms), nil
}

func (db *VectorDB) publicMatches(ms []multivar.Match) []VectorMatch {
	out := make([]VectorMatch, len(ms))
	for i, m := range ms {
		out[i] = VectorMatch{
			SeqID:    db.data.Seq(m.Ref.Seq).ID,
			Seq:      m.Ref.Seq,
			Start:    m.Ref.Start,
			End:      m.Ref.End,
			Distance: m.Distance,
		}
	}
	return out
}
