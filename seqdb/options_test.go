package seqdb

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func optMatchesBitIdentical(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].SeqID != b[i].SeqID || a[i].Seq != b[i].Seq ||
			a[i].Start != b[i].Start || a[i].End != b[i].End ||
			math.Float64bits(a[i].Distance) != math.Float64bits(b[i].Distance) {
			return false
		}
	}
	return true
}

// TestSearchWithDeterministic: the *With entry points with any Parallelism
// return answers, delivery order, and exact stats byte-identical to the
// serial context entry points.
func TestSearchWithDeterministic(t *testing.T) {
	db := newTestDB(t, 8, 60, 23)
	if err := db.BuildIndex("ix", IndexSpec{Method: MethodMaxEntropy, Categories: 8, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(29))
	workerCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0)}

	for qi := 0; qi < 3; qi++ {
		q := testValues(rng, 10)
		eps := float64(rng.Intn(8)) + 0.5

		want, wantStats, err := db.SearchCtx(ctx, "ix", q, eps)
		if err != nil {
			t.Fatal(err)
		}
		var wantVisit []Match
		if _, err := db.SearchVisitCtx(ctx, "ix", q, eps, func(m Match) bool {
			wantVisit = append(wantVisit, m)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		wantK, _, err := db.SearchKNNCtx(ctx, "ix", q, 4)
		if err != nil {
			t.Fatal(err)
		}

		for _, par := range workerCounts {
			opts := SearchOptions{Parallelism: par}
			got, gotStats, err := db.SearchWith(ctx, "ix", q, eps, opts)
			if err != nil {
				t.Fatalf("par=%d: %v", par, err)
			}
			if !optMatchesBitIdentical(got, want) {
				t.Fatalf("par=%d q%d: SearchWith diverged from serial", par, qi)
			}
			if gotStats.Answers != wantStats.Answers || gotStats.FilterCells != wantStats.FilterCells ||
				gotStats.NodesVisited != wantStats.NodesVisited || gotStats.Candidates != wantStats.Candidates {
				t.Fatalf("par=%d q%d: exact stats diverged: %+v vs %+v", par, qi, gotStats, wantStats)
			}

			var gotVisit []Match
			if _, err := db.SearchVisitWith(ctx, "ix", q, eps, func(m Match) bool {
				gotVisit = append(gotVisit, m)
				return true
			}, opts); err != nil {
				t.Fatalf("par=%d: %v", par, err)
			}
			if !optMatchesBitIdentical(gotVisit, wantVisit) {
				t.Fatalf("par=%d q%d: visitor delivery order diverged from serial", par, qi)
			}

			gotK, _, err := db.SearchKNNWith(ctx, "ix", q, 4, opts)
			if err != nil {
				t.Fatalf("par=%d: %v", par, err)
			}
			if !optMatchesBitIdentical(gotK, wantK) {
				t.Fatalf("par=%d q%d: KNN diverged from serial", par, qi)
			}
		}
	}

	// Unknown index and nil visitor fail the same way as the serial API.
	if _, _, err := db.SearchWith(ctx, "nope", testValues(rng, 5), 1, SearchOptions{Parallelism: 2}); err == nil {
		t.Fatal("SearchWith on a missing index succeeded")
	}
	if _, err := db.SearchVisitWith(ctx, "ix", testValues(rng, 5), 1, nil, SearchOptions{Parallelism: 2}); err == nil {
		t.Fatal("SearchVisitWith with nil visitor succeeded")
	}
}
