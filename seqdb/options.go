package seqdb

import (
	"context"
	"fmt"

	"twsearch/internal/core"
)

// SearchOptions tunes how one search call executes. The zero value is the
// serial traversal that Search/SearchCtx always use.
type SearchOptions struct {
	// Parallelism is the maximum number of worker goroutines one search may
	// use to walk disjoint subtrees concurrently; <= 1 means serial. Results
	// are byte-identical to the serial search at every setting — parallelism
	// changes latency, never answers. Values above runtime.GOMAXPROCS(0) are
	// honored (the engine does not clamp) but buy nothing beyond it.
	Parallelism int
}

func (o SearchOptions) core() core.SearchOptions {
	return core.SearchOptions{Parallelism: o.Parallelism}
}

// SearchWith is SearchCtx with execution options.
func (db *DB) SearchWith(ctx context.Context, indexName string, q []float64, eps float64, opts SearchOptions) ([]Match, SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oi, ok := db.indexes[indexName]
	if !ok {
		return nil, SearchStats{}, errNoIndex(indexName)
	}
	ms, stats, err := oi.ix.SearchOpts(ctx, q, eps, opts.core())
	if err != nil {
		return nil, stats, err
	}
	return db.publicMatches(ms), stats, nil
}

// SearchVisitWith is SearchVisitCtx with execution options. fn is always
// called from the calling goroutine, in the serial delivery order.
func (db *DB) SearchVisitWith(ctx context.Context, indexName string, q []float64, eps float64, fn func(Match) bool, opts SearchOptions) (SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oi, ok := db.indexes[indexName]
	if !ok {
		return SearchStats{}, errNoIndex(indexName)
	}
	if fn == nil {
		return SearchStats{}, fmt.Errorf("seqdb: nil visitor")
	}
	return oi.ix.SearchVisitOpts(ctx, q, eps, func(m core.Match) bool {
		return fn(Match{
			SeqID:    db.data.Seq(m.Ref.Seq).ID,
			Seq:      m.Ref.Seq,
			Start:    m.Ref.Start,
			End:      m.Ref.End,
			Distance: m.Distance,
		})
	}, opts.core())
}

// SearchKNNWith is SearchKNNCtx with execution options; every threshold-
// expansion round runs with the same options.
func (db *DB) SearchKNNWith(ctx context.Context, indexName string, q []float64, k int, opts SearchOptions) ([]Match, SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oi, ok := db.indexes[indexName]
	if !ok {
		return nil, SearchStats{}, errNoIndex(indexName)
	}
	ms, stats, err := oi.ix.SearchKNNOpts(ctx, q, k, opts.core())
	if err != nil {
		return nil, stats, err
	}
	return db.publicMatches(ms), stats, nil
}
