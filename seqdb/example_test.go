package seqdb_test

import (
	"fmt"
	"log"
	"os"

	"twsearch/seqdb"
)

// The paper's introductory example: a stock sampled daily and the same
// movement sampled every other day are identical under time warping.
func Example() {
	dir, err := os.MkdirTemp("", "seqdb-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := seqdb.Create(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Add("daily", []float64{20, 20, 21, 21, 20, 20, 23, 23})
	db.Add("every-other-day", []float64{20, 21, 20, 23})
	db.Save()

	db.BuildIndex("main", seqdb.IndexSpec{
		Method:     seqdb.MethodMaxEntropy,
		Categories: 8,
		Sparse:     true, // the paper's SST_C
	})

	matches, _, err := db.Search("main", []float64{20, 21, 20, 23}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%s[%d:%d] distance %g\n", m.SeqID, m.Start, m.End, m.Distance)
	}
	// Output:
	// daily[0:7] distance 0
	// daily[0:8] distance 0
	// daily[1:7] distance 0
	// daily[1:8] distance 0
	// every-other-day[0:4] distance 0
}

// Nearest-neighbor search expands the threshold until the k best answers
// are certain.
func ExampleDB_SearchKNN() {
	dir, err := os.MkdirTemp("", "seqdb-knn-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := seqdb.Create(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.Add("a", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	db.Add("b", []float64{1, 2, 3, 9, 9, 9})
	db.Save()
	db.BuildIndex("i", seqdb.IndexSpec{Method: seqdb.MethodExact})

	matches, _, err := db.SearchKNN("i", []float64{2, 3, 4}, 1)
	if err != nil {
		log.Fatal(err)
	}
	m := matches[0]
	fmt.Printf("nearest: %s[%d:%d] at distance %g\n", m.SeqID, m.Start, m.End, m.Distance)
	// Output:
	// nearest: a[1:4] at distance 0
}

// Align explains a match: which query element was warped onto which data
// element (Figure 1(b) of the paper).
func ExampleDB_Align() {
	dir, err := os.MkdirTemp("", "seqdb-align-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := seqdb.Create(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.Add("s", []float64{20, 20, 21, 21})
	db.Save()
	db.BuildIndex("i", seqdb.IndexSpec{Method: seqdb.MethodExact})

	q := []float64{20, 21}
	matches, _, err := db.Search("i", q, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Take the whole-sequence match.
	var whole seqdb.Match
	for _, m := range matches {
		if m.Start == 0 && m.End == 4 {
			whole = m
		}
	}
	_, steps, err := db.Align(whole, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range steps {
		fmt.Printf("q[%d] -> s[%d]\n", st.QueryIndex, st.SeqIndex)
	}
	// Output:
	// q[0] -> s[0]
	// q[0] -> s[1]
	// q[1] -> s[2]
	// q[1] -> s[3]
}

// The multivariate extension: 2-D points, grid-categorized, same engine.
func ExampleVectorDB() {
	dir, err := os.MkdirTemp("", "seqdb-vector-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := seqdb.CreateVector(dir+"/db", 2)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	// The same stroke sampled at full and double rate (every point twice).
	db.Add("fast", [][]float64{{0, 0}, {2, 2}, {4, 4}})
	db.Add("slow", [][]float64{{0, 0}, {0, 0}, {2, 2}, {2, 2}, {4, 4}, {4, 4}})
	db.Save()
	db.BuildIndex("g", seqdb.VectorIndexSpec{CatsPerDim: 4, Sparse: true})

	matches, err := db.Search("g", [][]float64{{0, 0}, {2, 2}, {4, 4}}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%s[%d:%d] distance %g\n", m.SeqID, m.Start, m.End, m.Distance)
	}
	// Output:
	// fast[0:3] distance 0
	// slow[0:5] distance 0
	// slow[0:6] distance 0
	// slow[1:5] distance 0
	// slow[1:6] distance 0
}
