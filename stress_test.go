package twsearch_test

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"twsearch/internal/categorize"
	"twsearch/internal/core"
	"twsearch/internal/disktree"
	"twsearch/internal/sequence"
)

// TestStressFeatureMatrix sweeps the full cross product of index features —
// categorization method × sparsity × disk layout × warping window × answer
// length floor — against the correspondingly-constrained sequential scan.
// It is the widest single statement of the no-false-dismissal guarantee in
// the repository.
func TestStressFeatureMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("feature matrix is slow")
	}
	rng := rand.New(rand.NewSource(911))
	dir := t.TempDir()

	data := sequence.NewDataset()
	for i := 0; i < 6; i++ {
		n := 10 + rng.Intn(30)
		vals := make([]float64, n)
		v := float64(rng.Intn(30))
		for j := range vals {
			v += float64(rng.Intn(5) - 2)
			vals[j] = v
		}
		data.MustAdd(sequence.Sequence{ID: fmt.Sprintf("s%d", i), Values: vals})
	}
	queries := [][]float64{}
	for i := 0; i < 3; i++ {
		n := 3 + rng.Intn(6)
		q := make([]float64, n)
		v := float64(rng.Intn(30))
		for j := range q {
			v += float64(rng.Intn(5) - 2)
			q[j] = v
		}
		queries = append(queries, q)
	}

	idx := 0
	for _, kind := range []categorize.Kind{categorize.KindIdentity, categorize.KindEqualLength, categorize.KindMaxEntropy} {
		for _, sparse := range []bool{false, true} {
			for _, layout := range []disktree.Layout{disktree.LayoutReference, disktree.LayoutInline} {
				for _, window := range []int{-1, 4} {
					for _, minLen := range []int{0, 4} {
						idx++
						name := fmt.Sprintf("%s/sparse=%v/%s/w=%d/min=%d", kind, sparse, layout, window, minLen)
						opts := core.Options{
							Kind:         kind,
							Categories:   6,
							Sparse:       sparse,
							Window:       window,
							MinAnswerLen: minLen,
							Layout:       layout,
						}
						ix, err := core.Build(data, filepath.Join(dir, fmt.Sprintf("m%d.twt", idx)), opts)
						if err != nil {
							t.Fatalf("%s: build: %v", name, err)
						}
						for qi, q := range queries {
							for _, eps := range []float64{1.5, 9.5} {
								got, _, err := ix.Search(q, eps)
								if err != nil {
									t.Fatalf("%s: search: %v", name, err)
								}
								all, _, err := core.SeqScan(data, q, eps, window)
								if err != nil {
									t.Fatal(err)
								}
								var want []core.Match
								for _, m := range all {
									if minLen == 0 || m.Ref.Len() >= minLen {
										want = append(want, m)
									}
								}
								if len(got) != len(want) {
									t.Fatalf("%s q%d eps=%v: index %d, scan %d", name, qi, eps, len(got), len(want))
								}
								for i := range got {
									if got[i].Ref != want[i].Ref || math.Abs(got[i].Distance-want[i].Distance) > 1e-9 {
										t.Fatalf("%s q%d eps=%v: match %d differs", name, qi, eps, i)
									}
								}
							}
						}
						if err := ix.RemoveFile(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
	}
	t.Logf("verified %d feature combinations", idx)
}
