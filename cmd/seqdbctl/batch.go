package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"twsearch/seqdb"
	"twsearch/seqdb/client"
)

// readBatchFile parses a batch query file: one query per line, either
//
//	search INDEX EPS v1,v2,...
//	knn    INDEX K   v1,v2,...
//
// Blank lines and lines starting with '#' are skipped. Errors name the
// offending line so a typo in a long query file is findable.
func readBatchFile(path string) ([]client.BatchQuery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var queries []client.BatchQuery
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want `search INDEX EPS values` or `knn INDEX K values`, got %d fields", path, lineNo, len(fields))
		}
		q, err := parseQueryValues(fields[3])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		switch fields[0] {
		case "search":
			eps, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad eps %q", path, lineNo, fields[2])
			}
			queries = append(queries, client.BatchQuery{Index: fields[1], Eps: eps, Query: q})
		case "knn":
			k, err := strconv.Atoi(fields[2])
			if err != nil || k < 1 {
				return nil, fmt.Errorf("%s:%d: bad k %q", path, lineNo, fields[2])
			}
			queries = append(queries, client.BatchQuery{Index: fields[1], K: k, Query: q})
		default:
			return nil, fmt.Errorf("%s:%d: unknown op %q (want search or knn)", path, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return queries, nil
}

// cmdBatch ships a whole query file to a twsearchd daemon in one
// protocol-v4 batch round-trip and prints one result block per query, in
// file order. A per-query failure (unknown index, bad op) is reported in
// that query's block and turns the exit code nonzero; a batch-wide
// failure keeps the usual exit-code convention — 3 when the -timeout (or
// the server's cap) expired, 4 when the server refused the batch as
// overloaded.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	addr := fs.String("addr", "", "twsearchd address")
	dbName := fs.String("dbname", "", "database name on the server (empty = sole db)")
	file := fs.String("file", "", "query file: one search/knn query per line")
	timeout := fs.Duration("timeout", 0, "abort the whole batch after this long (0 = none)")
	limit := fs.Int("limit", 5, "max matches to print per query")
	par := fs.Int("par", 0, "per-query parallelism hint sent to the server")
	fs.Parse(args)
	if *addr == "" || *file == "" {
		return fmt.Errorf("batch: -addr and -file required")
	}
	queries, err := readBatchFile(*file)
	if err != nil {
		return err
	}
	if len(queries) == 0 {
		return fmt.Errorf("batch: no queries in %s", *file)
	}
	ctx, cancel := queryContext(*timeout)
	defer cancel()
	c, err := client.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	results, agg, err := c.Batch(ctx, *dbName, queries, seqdb.SearchOptions{Parallelism: *par})
	if err != nil {
		return err
	}
	failed := 0
	for i, r := range results {
		q := queries[i]
		what := fmt.Sprintf("search %s eps=%g", q.Index, q.Eps)
		if q.K > 0 {
			what = fmt.Sprintf("knn %s k=%d", q.Index, q.K)
		}
		if r.Err != nil {
			failed++
			fmt.Printf("[%d] %s: error: %v\n", i, what, r.Err)
			continue
		}
		fmt.Printf("[%d] %s: %d matches in %v (cells=%d)\n",
			i, what, len(r.Matches), r.Stats.Elapsed, r.Stats.Cells())
		for j, m := range r.Matches {
			if j >= *limit {
				fmt.Printf("    ... and %d more\n", len(r.Matches)-*limit)
				break
			}
			fmt.Printf("    %-12s [%4d:%4d) dist=%.3f\n", m.SeqID, m.Start, m.End, m.Distance)
		}
	}
	fmt.Printf("batch: %d queries in %v (cells=%d, candidates=%d)\n",
		len(results), agg.Elapsed, agg.Cells(), agg.Candidates)
	if failed > 0 {
		return fmt.Errorf("batch: %d of %d queries failed", failed, len(results))
	}
	return nil
}
