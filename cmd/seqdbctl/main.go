// Command seqdbctl manages twsearch sequence databases from the shell.
//
// Usage:
//
//	seqdbctl create  -db DIR
//	seqdbctl gen     -db DIR [-kind stocks|artificial] [-n N] [-len L] [-seed S]
//	seqdbctl import  -db DIR -csv FILE
//	seqdbctl stats   -db DIR [-backend pool|mmap|auto]
//	seqdbctl index   -db DIR -name NAME [-method me|el|kmeans|exact] [-cats N] [-sparse] [-window W] [-encoding v1|v2|v3]
//	seqdbctl drop    -db DIR -name NAME
//	seqdbctl query   -db DIR -name NAME -eps E (-q "v1,v2,..." | -from SEQID -start P -len L) [-limit N] [-timeout D] [-backend B] [-envelopes auto|on|off]
//	seqdbctl scan    -db DIR -eps E (-q "v1,v2,..." | -from SEQID -start P -len L) [-limit N] [-timeout D] [-backend B] [-envelopes auto|on|off]
//	seqdbctl shard   -db DIR -out DIR -shards N [-name NAME -method ... -cats N]
//	seqdbctl batch   -addr host:port -file FILE [-dbname NAME] [-timeout D]
//
// Wherever -db takes a directory, a sharded database root (a directory
// holding a MANIFEST.shards, as written by the shard subcommand) works
// too: stats, index, drop, query, scan, and knn auto-detect sharding and
// fan out over the shards.
//
// query, scan, and knn also run against a twsearchd daemon instead of a
// local directory: pass -addr host:port (with -q, since the server does
// not expose raw sequence values for -from cuts). batch is remote-only:
// it ships a whole query file in one round-trip.
//
// Exit codes: 0 success, 1 generic error, 2 usage, 3 deadline exceeded
// (-timeout hit locally or on the server), 4 server overloaded.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"twsearch/internal/wire"
	"twsearch/internal/workload"
	"twsearch/seqdb"
	"twsearch/seqdb/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "create":
		err = cmdCreate(args)
	case "gen":
		err = cmdGen(args)
	case "import":
		err = cmdImport(args)
	case "stats":
		err = cmdStats(args)
	case "index":
		err = cmdIndex(args)
	case "drop":
		err = cmdDrop(args)
	case "query":
		err = cmdQuery(args, true)
	case "scan":
		err = cmdQuery(args, false)
	case "knn":
		err = cmdKNN(args)
	case "align":
		err = cmdAlign(args)
	case "tune":
		err = cmdTune(args)
	case "shard":
		err = cmdShard(args)
	case "batch":
		err = cmdBatch(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqdbctl:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps error classes onto distinct shell exit codes so scripts
// can tell a slow query from a rejected one: 3 for deadline/timeout, 4
// for a server-side overload fast-fail, 1 for everything else.
func exitCode(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return 3
	case errors.Is(err, wire.ErrOverloaded):
		return 4
	}
	return 1
}

// queryContext honors -timeout; zero means no deadline.
func queryContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.Background(), func() {}
}

// database is the surface of a plain or sharded database that the
// subcommands use; *seqdb.DB and *seqdb.ShardedDB both satisfy it.
type database interface {
	Close() error
	Values(id string) []float64
	Indexes() []string
	Index(name string) (seqdb.IndexInfo, error)
	Stats() seqdb.Stats
	PoolStats() []seqdb.IndexPoolStats
	BuildIndex(name string, spec seqdb.IndexSpec) error
	DropIndex(name string) error
	SearchCtx(ctx context.Context, name string, q []float64, eps float64) ([]seqdb.Match, seqdb.SearchStats, error)
	SearchKNNCtx(ctx context.Context, name string, q []float64, k int) ([]seqdb.Match, seqdb.SearchStats, error)
	SeqScanCtx(ctx context.Context, q []float64, eps float64) ([]seqdb.Match, seqdb.SearchStats, error)
}

// openAny opens dir as a sharded database when it holds a shard manifest
// and as a plain database otherwise, reading index trees through the
// -backend storage backend ("" = buffer pool) with the -envelopes cascade
// mode ("" = on).
func openAny(dir, backendName, envName string) (database, error) {
	backend, err := seqdb.ParseBackend(backendName)
	if err != nil {
		return nil, err
	}
	envelopes, err := seqdb.ParseEnvelopeMode(envName)
	if err != nil {
		return nil, err
	}
	opts := seqdb.OpenOptions{Backend: backend, Envelopes: envelopes}
	if seqdb.IsSharded(dir) {
		return seqdb.OpenShardedWith(dir, opts)
	}
	return seqdb.OpenWith(dir, opts)
}

// backendFlag registers the shared -backend flag on a subcommand FlagSet.
func backendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", "", "storage backend for index trees: pool (default), mmap, or auto")
}

// envelopesFlag registers the shared -envelopes flag on a subcommand
// FlagSet.
func envelopesFlag(fs *flag.FlagSet) *string {
	return fs.String("envelopes", "", "envelope lower-bound cascade: auto (default, on), on, or off")
}

// parseQueryValues parses the -q "v1,v2,..." form.
func parseQueryValues(s string) ([]float64, error) {
	var q []float64
	for _, fld := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(fld), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", fld)
		}
		q = append(q, v)
	}
	return q, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: seqdbctl create|gen|import|stats|index|drop|query|scan|knn|align|tune|shard|batch [flags]")
	os.Exit(2)
}

// cmdAlign shows the optimal warping path between a stored subsequence and
// a query cut from another sequence.
func cmdAlign(args []string) error {
	fs := flag.NewFlagSet("align", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	seqID := fs.String("seq", "", "matched sequence id")
	start := fs.Int("start", 0, "match start (0-based)")
	end := fs.Int("end", 0, "match end (exclusive)")
	from := fs.String("from", "", "take the query from this sequence id")
	qstart := fs.Int("qstart", 0, "query start within -from")
	qlen := fs.Int("qlen", 20, "query length within -from")
	fs.Parse(args)
	if *db == "" || *seqID == "" || *from == "" || *end <= *start {
		return fmt.Errorf("align: -db, -seq, -start/-end and -from required")
	}
	d, err := seqdb.Open(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	qvals := d.Values(*from)
	if qvals == nil {
		return fmt.Errorf("align: no sequence %q", *from)
	}
	if *qstart < 0 || *qstart+*qlen > len(qvals) {
		return fmt.Errorf("align: query range out of bounds")
	}
	q := append([]float64(nil), qvals[*qstart:*qstart+*qlen]...)
	dist, steps, err := d.Align(seqdb.Match{SeqID: *seqID, Start: *start, End: *end}, q)
	if err != nil {
		return err
	}
	vals := d.Values(*seqID)
	fmt.Printf("D_tw(%s[%d:%d], %s[%d:%d]) = %.4f\n", *seqID, *start, *end, *from, *qstart, *qstart+*qlen, dist)
	for _, st := range steps {
		fmt.Printf("  q[%2d]=%8.3f  ->  s[%3d]=%8.3f  (|diff| %.3f)\n",
			st.QueryIndex, q[st.QueryIndex], st.SeqIndex, vals[st.SeqIndex],
			abs64(q[st.QueryIndex]-vals[st.SeqIndex]))
	}
	return nil
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// cmdTune runs the Section 5.1 category-count selection.
func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	method := fs.String("method", "me", "me, el, or kmeans")
	sparse := fs.Bool("sparse", true, "sparse suffix tree")
	eps := fs.Float64("eps", 10, "distance threshold for the trial queries")
	countsStr := fs.String("counts", "5,10,20,40,80,160", "candidate category counts")
	queries := fs.Int("queries", 5, "number of sample queries")
	wt := fs.Float64("wt", 1, "weight of query seconds")
	ws := fs.Float64("ws", 0.001, "weight of index KB")
	seed := fs.Int64("seed", 1, "query sampling seed")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("tune: -db required")
	}
	var m seqdb.Method
	switch *method {
	case "me":
		m = seqdb.MethodMaxEntropy
	case "el":
		m = seqdb.MethodEqualLength
	case "kmeans":
		m = seqdb.MethodKMeans
	default:
		return fmt.Errorf("tune: unknown method %q", *method)
	}
	var counts []int
	for _, fld := range strings.Split(*countsStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(fld))
		if err != nil || n < 1 {
			return fmt.Errorf("tune: bad count %q", fld)
		}
		counts = append(counts, n)
	}
	d, err := seqdb.Open(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	// Sample queries from the database itself.
	ids := d.SequenceIDs()
	if len(ids) == 0 {
		return fmt.Errorf("tune: empty database")
	}
	rng := newRand(*seed)
	var qs [][]float64
	for len(qs) < *queries {
		vals := d.Values(ids[rng.Intn(len(ids))])
		n := 20
		if n > len(vals) {
			n = len(vals)
		}
		start := rng.Intn(len(vals) - n + 1)
		qs = append(qs, append([]float64(nil), vals[start:start+n]...))
	}
	best, measures, err := d.SelectCategories(
		seqdb.IndexSpec{Method: m, Sparse: *sparse}, counts, qs, *eps,
		seqdb.CostModel{Wt: *wt, Ws: *ws})
	if err != nil {
		return err
	}
	fmt.Printf("candidate counts (avg query seconds / index KB):\n")
	for _, meas := range measures {
		marker := " "
		if meas.Count == best {
			marker = "*"
		}
		fmt.Printf(" %s %4d: %.5fs / %.0f KB\n", marker, meas.Count, meas.TimeCost, meas.SpaceCost)
	}
	fmt.Printf("best count for Wt=%g Ws=%g: %d\n", *wt, *ws, best)
	return nil
}

func cmdKNN(args []string) error {
	fs := flag.NewFlagSet("knn", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	name := fs.String("name", "", "index name")
	k := fs.Int("k", 10, "number of nearest subsequences")
	qstr := fs.String("q", "", "query values: v1,v2,...")
	from := fs.String("from", "", "take the query from this sequence id")
	start := fs.Int("start", 0, "query start within -from (0-based)")
	qlen := fs.Int("len", 20, "query length within -from")
	timeout := fs.Duration("timeout", 0, "abort the search after this long (0 = none)")
	addr := fs.String("addr", "", "twsearchd address for remote mode (requires -q)")
	dbName := fs.String("dbname", "", "database name on the server (remote mode; empty = sole db)")
	backend := backendFlag(fs)
	envmode := envelopesFlag(fs)
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("knn: -name required")
	}
	ctx, cancel := queryContext(*timeout)
	defer cancel()

	var matches []seqdb.Match
	var stats seqdb.SearchStats
	if *addr != "" {
		if *qstr == "" {
			return fmt.Errorf("knn: remote mode needs -q (the server does not expose -from cuts)")
		}
		q, err := parseQueryValues(*qstr)
		if err != nil {
			return fmt.Errorf("knn: %w", err)
		}
		c, err := client.Dial(*addr)
		if err != nil {
			return err
		}
		defer c.Close()
		matches, stats, err = c.SearchKNN(ctx, *dbName, *name, q, *k)
		if err != nil {
			return err
		}
		return printKNN(matches, stats)
	}

	if *db == "" || *from == "" {
		return fmt.Errorf("knn: -db and -from required (or -addr with -q)")
	}
	d, err := openAny(*db, *backend, *envmode)
	if err != nil {
		return err
	}
	defer d.Close()
	vals := d.Values(*from)
	if vals == nil {
		return fmt.Errorf("knn: no sequence %q", *from)
	}
	if *start < 0 || *start+*qlen > len(vals) {
		return fmt.Errorf("knn: query range out of bounds")
	}
	q := append([]float64(nil), vals[*start:*start+*qlen]...)
	matches, stats, err = d.SearchKNNCtx(ctx, *name, q, *k)
	if err != nil {
		return err
	}
	return printKNN(matches, stats)
}

func printKNN(matches []seqdb.Match, stats seqdb.SearchStats) error {
	fmt.Printf("%d nearest subsequences in %v (cells=%d, lb=%d, pruned=%d)\n",
		len(matches), stats.Elapsed, stats.Cells(), stats.LBCells, stats.EnvelopePruned)
	sort.Slice(matches, func(i, j int) bool { return matches[i].Distance < matches[j].Distance })
	for _, m := range matches {
		fmt.Printf("  %-12s [%4d:%4d) dist=%.3f\n", m.SeqID, m.Start, m.End, m.Distance)
	}
	return nil
}

func cmdCreate(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("create: -db required")
	}
	d, err := seqdb.Create(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Printf("created empty database in %s\n", *db)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	kind := fs.String("kind", "stocks", "stocks or artificial")
	n := fs.Int("n", 0, "number of sequences (0 = paper default)")
	length := fs.Int("len", 0, "sequence length (0 = paper default)")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("gen: -db required")
	}
	d, err := seqdb.Create(*db)
	if err != nil {
		return err
	}
	defer d.Close()

	switch *kind {
	case "stocks":
		data := workload.Stocks(workload.StockConfig{NumSequences: *n, AvgLen: *length, Seed: *seed})
		for i := 0; i < data.Len(); i++ {
			if err := d.Add(data.Seq(i).ID, data.Values(i)); err != nil {
				return err
			}
		}
	case "artificial":
		count, l := *n, *length
		if count == 0 {
			count = 200
		}
		if l == 0 {
			l = 200
		}
		data := workload.Artificial(workload.ArtificialConfig{NumSequences: count, Len: l, Seed: *seed})
		for i := 0; i < data.Len(); i++ {
			if err := d.Add(data.Seq(i).ID, data.Values(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	if err := d.Save(); err != nil {
		return err
	}
	st := d.Stats()
	fmt.Printf("generated %d %s sequences (%d elements) into %s\n", st.Sequences, *kind, st.TotalElements, *db)
	return nil
}

func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	csv := fs.String("csv", "", "CSV file: id,v1,v2,... per line")
	fs.Parse(args)
	if *db == "" || *csv == "" {
		return fmt.Errorf("import: -db and -csv required")
	}
	f, err := os.Open(*csv)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := seqdb.Create(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	imported, err := importCSV(d, f)
	if err != nil {
		return err
	}
	if err := d.Save(); err != nil {
		return err
	}
	fmt.Printf("imported %d sequences into %s\n", imported, *db)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	backend := backendFlag(fs)
	envmode := envelopesFlag(fs)
	fs.Parse(args)
	d, err := openAny(*db, *backend, *envmode)
	if err != nil {
		return err
	}
	defer d.Close()
	st := d.Stats()
	fmt.Printf("sequences:      %d\n", st.Sequences)
	fmt.Printf("elements:       %d\n", st.TotalElements)
	fmt.Printf("length:         avg %.1f, min %d, max %d\n", st.AvgLen, st.MinLen, st.MaxLen)
	fmt.Printf("values:         [%g, %g], mean %.3f, stddev %.3f\n", st.MinValue, st.MaxValue, st.MeanValue, st.StdDev)
	names := d.Indexes()
	sort.Strings(names)
	for _, name := range names {
		info, err := d.Index(name)
		if err != nil {
			return err
		}
		fmt.Printf("index %q: method=%s cats=%d sparse=%v window=%d encoding=%s size=%dKB nodes=%d leaves=%d\n",
			name, info.Spec.Method, info.Spec.Categories, info.Spec.Sparse, info.Spec.Window,
			info.Spec.Encoding, info.SizeBytes/1024, info.Nodes, info.Leaves)
	}
	// Counters are near zero on a fresh handle; the interesting numbers come
	// from a long-lived daemon via `query -addr`. The shard count is static.
	for _, ps := range d.PoolStats() {
		var hits, misses, evictions uint64
		for _, sh := range ps.Shards {
			hits += sh.Hits
			misses += sh.Misses
			evictions += sh.Evictions
		}
		fmt.Printf("pool  %q: shards=%d hits=%d misses=%d evictions=%d\n",
			ps.Index, len(ps.Shards), hits, misses, evictions)
	}
	return nil
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	name := fs.String("name", "", "index name")
	method := fs.String("method", "me", "me, el, kmeans, or exact")
	cats := fs.Int("cats", 20, "number of categories")
	sparse := fs.Bool("sparse", false, "sparse suffix tree (SSTc)")
	window := fs.Int("window", 0, "warping window half-width (0 = none)")
	encName := fs.String("encoding", "", "node record encoding: v1 (default), v2 (compact varint), or v3 (varint + envelope hulls)")
	backend := backendFlag(fs)
	envmode := envelopesFlag(fs)
	fs.Parse(args)
	if *db == "" || *name == "" {
		return fmt.Errorf("index: -db and -name required")
	}
	enc, err := seqdb.ParseEncoding(*encName)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	var m seqdb.Method
	switch *method {
	case "me":
		m = seqdb.MethodMaxEntropy
	case "el":
		m = seqdb.MethodEqualLength
	case "kmeans":
		m = seqdb.MethodKMeans
	case "exact":
		m = seqdb.MethodExact
	default:
		return fmt.Errorf("index: unknown method %q", *method)
	}
	d, err := openAny(*db, *backend, *envmode)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.BuildIndex(*name, seqdb.IndexSpec{
		Method: m, Categories: *cats, Sparse: *sparse, Window: *window, Encoding: enc,
	}); err != nil {
		return err
	}
	info, err := d.Index(*name)
	if err != nil {
		return err
	}
	fmt.Printf("built index %q: %d KB, %d leaves\n", *name, info.SizeBytes/1024, info.Leaves)
	return nil
}

func cmdDrop(args []string) error {
	fs := flag.NewFlagSet("drop", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	name := fs.String("name", "", "index name")
	fs.Parse(args)
	d, err := openAny(*db, "", "")
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.DropIndex(*name); err != nil {
		return err
	}
	fmt.Printf("dropped index %q\n", *name)
	return nil
}

func cmdQuery(args []string, useIndex bool) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	name := fs.String("name", "", "index name (query only)")
	eps := fs.Float64("eps", 0, "distance threshold")
	qstr := fs.String("q", "", "query values: v1,v2,...")
	from := fs.String("from", "", "take the query from this sequence id")
	start := fs.Int("start", 0, "query start within -from (0-based)")
	qlen := fs.Int("len", 20, "query length within -from")
	limit := fs.Int("limit", 20, "max matches to print")
	timeout := fs.Duration("timeout", 0, "abort the search after this long (0 = none)")
	addr := fs.String("addr", "", "twsearchd address for remote mode (requires -q)")
	dbName := fs.String("dbname", "", "database name on the server (remote mode; empty = sole db)")
	backend := backendFlag(fs)
	envmode := envelopesFlag(fs)
	fs.Parse(args)
	ctx, cancel := queryContext(*timeout)
	defer cancel()

	if useIndex && *name == "" {
		return fmt.Errorf("query: -name required (or use the scan subcommand)")
	}

	var matches []seqdb.Match
	var stats seqdb.SearchStats
	if *addr != "" {
		if *qstr == "" {
			return fmt.Errorf("query: remote mode needs -q (the server does not expose -from cuts)")
		}
		q, err := parseQueryValues(*qstr)
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
		c, err := client.Dial(*addr)
		if err != nil {
			return err
		}
		defer c.Close()
		if useIndex {
			matches, stats, err = c.Search(ctx, *dbName, *name, q, *eps)
		} else {
			matches, stats, err = c.SeqScan(ctx, *dbName, q, *eps)
		}
		if err != nil {
			return err
		}
		return printMatches(matches, stats, *limit)
	}

	d, err := openAny(*db, *backend, *envmode)
	if err != nil {
		return err
	}
	defer d.Close()

	var q []float64
	switch {
	case *qstr != "":
		q, err = parseQueryValues(*qstr)
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
	case *from != "":
		vals := d.Values(*from)
		if vals == nil {
			return fmt.Errorf("query: no sequence %q", *from)
		}
		if *start < 0 || *start+*qlen > len(vals) {
			return fmt.Errorf("query: [%d, %d) out of range of %q (len %d)", *start, *start+*qlen, *from, len(vals))
		}
		q = append(q, vals[*start:*start+*qlen]...)
	default:
		return fmt.Errorf("query: need -q or -from")
	}

	if useIndex {
		matches, stats, err = d.SearchCtx(ctx, *name, q, *eps)
	} else {
		matches, stats, err = d.SeqScanCtx(ctx, q, *eps)
	}
	if err != nil {
		return err
	}
	return printMatches(matches, stats, *limit)
}

func printMatches(matches []seqdb.Match, stats seqdb.SearchStats, limit int) error {
	fmt.Printf("%d matches in %v (cells=%d, candidates=%d, nodes=%d, pages=%d, lb=%d, pruned=%d)\n",
		len(matches), stats.Elapsed, stats.Cells(), stats.Candidates, stats.NodesVisited, stats.PagesRead,
		stats.LBCells, stats.EnvelopePruned)
	sort.Slice(matches, func(i, j int) bool { return matches[i].Distance < matches[j].Distance })
	for i, m := range matches {
		if i >= limit {
			fmt.Printf("... and %d more\n", len(matches)-limit)
			break
		}
		fmt.Printf("  %-12s [%4d:%4d) dist=%.3f\n", m.SeqID, m.Start, m.End, m.Distance)
	}
	return nil
}
