package main

import (
	"flag"
	"fmt"

	"twsearch/seqdb"
)

// parseMethod maps the -method shorthand onto the index method.
func parseMethod(s string) (seqdb.Method, error) {
	switch s {
	case "me":
		return seqdb.MethodMaxEntropy, nil
	case "el":
		return seqdb.MethodEqualLength, nil
	case "kmeans":
		return seqdb.MethodKMeans, nil
	case "exact":
		return seqdb.MethodExact, nil
	}
	return "", fmt.Errorf("unknown method %q", s)
}

// cmdShard partitions an existing database into a sharded database root:
// a MANIFEST.shards plus one self-contained shard database per contiguous
// slice of the sequence numbering. With -name it also builds that index on
// every shard, so the output is immediately queryable.
func cmdShard(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	db := fs.String("db", "", "source database directory")
	out := fs.String("out", "", "output directory for the sharded database")
	shards := fs.Int("shards", 2, "number of shards")
	name := fs.String("name", "", "build this index on every shard after partitioning (optional)")
	method := fs.String("method", "me", "index method: me, el, kmeans, or exact")
	cats := fs.Int("cats", 20, "number of categories")
	sparse := fs.Bool("sparse", false, "sparse suffix tree (SSTc)")
	window := fs.Int("window", 0, "warping window half-width (0 = none)")
	fs.Parse(args)
	if *db == "" || *out == "" {
		return fmt.Errorf("shard: -db and -out required")
	}
	if *shards < 1 {
		return fmt.Errorf("shard: -shards must be at least 1")
	}
	d, err := seqdb.Open(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	sdb, err := d.PartitionInto(*out, *shards)
	if err != nil {
		return err
	}
	defer sdb.Close()
	for i, r := range sdb.ShardRanges() {
		fmt.Printf("shard %3d: sequences [%d, %d)\n", i, r.Start, r.End())
	}
	fmt.Printf("partitioned %d sequences into %d shards under %s\n", sdb.Len(), sdb.Shards(), *out)
	if *name == "" {
		return nil
	}
	m, err := parseMethod(*method)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := sdb.BuildIndex(*name, seqdb.IndexSpec{
		Method: m, Categories: *cats, Sparse: *sparse, Window: *window,
	}); err != nil {
		return err
	}
	info, err := sdb.Index(*name)
	if err != nil {
		return err
	}
	fmt.Printf("built index %q on every shard: %d KB total, %d leaves\n",
		*name, info.SizeBytes/1024, info.Leaves)
	return nil
}
