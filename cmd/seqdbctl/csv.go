package main

import (
	"fmt"
	"io"
	"math/rand"

	"twsearch/internal/sequence"
	"twsearch/seqdb"
)

// importCSV reads id,v1,v2,... lines into the database and returns how many
// sequences were added.
func importCSV(db *seqdb.DB, r io.Reader) (int, error) {
	parsed, err := sequence.ReadCSV(r)
	if err != nil {
		return 0, err
	}
	for i := 0; i < parsed.Len(); i++ {
		s := parsed.Seq(i)
		if err := db.Add(s.ID, s.Values); err != nil {
			return i, fmt.Errorf("adding %q: %w", s.ID, err)
		}
	}
	return parsed.Len(), nil
}

// newRand returns a seeded PRNG for query sampling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
