package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"twsearch/internal/wire"
	"twsearch/seqdb"
	"twsearch/seqdb/server"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestCLILifecycle(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db")

	out, err := captureStdout(t, func() error {
		return cmdGen([]string{"-db", db, "-kind", "stocks", "-n", "15", "-seed", "7"})
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	if !strings.Contains(out, "generated 15 stocks sequences") {
		t.Fatalf("gen output: %q", out)
	}

	if _, err := captureStdout(t, func() error {
		return cmdIndex([]string{"-db", db, "-name", "fast", "-method", "me", "-cats", "10", "-sparse"})
	}); err != nil {
		t.Fatalf("index: %v", err)
	}

	out, err = captureStdout(t, func() error {
		return cmdStats([]string{"-db", db})
	})
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out, "sequences:      15") || !strings.Contains(out, `index "fast"`) {
		t.Fatalf("stats output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-name", "fast", "-eps", "8",
			"-from", "stock-0002", "-start", "10", "-len", "12", "-limit", "3"}, true)
	})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !strings.Contains(out, "matches in") || !strings.Contains(out, "stock-0002") {
		t.Fatalf("query output: %q", out)
	}

	scanOut, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-eps", "8",
			"-from", "stock-0002", "-start", "10", "-len", "12", "-limit", "3"}, false)
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	// Index and scan agree on the match count (first output token).
	if strings.Fields(out)[0] != strings.Fields(scanOut)[0] {
		t.Fatalf("query found %s matches, scan %s", strings.Fields(out)[0], strings.Fields(scanOut)[0])
	}

	out, err = captureStdout(t, func() error {
		return cmdKNN([]string{"-db", db, "-name", "fast", "-k", "4",
			"-from", "stock-0002", "-start", "10", "-len", "12"})
	})
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	if !strings.Contains(out, "4 nearest subsequences") {
		t.Fatalf("knn output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return cmdAlign([]string{"-db", db, "-seq", "stock-0002", "-start", "10", "-end", "20",
			"-from", "stock-0002", "-qstart", "10", "-qlen", "10"})
	})
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	if !strings.Contains(out, "= 0.0000") {
		t.Fatalf("self-alignment distance not zero: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return cmdTune([]string{"-db", db, "-counts", "4,16", "-queries", "2", "-eps", "5"})
	})
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	if !strings.Contains(out, "best count") {
		t.Fatalf("tune output: %q", out)
	}

	if _, err := captureStdout(t, func() error {
		return cmdDrop([]string{"-db", db, "-name", "fast"})
	}); err != nil {
		t.Fatalf("drop: %v", err)
	}
}

func TestCLIImport(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(csvPath, []byte("a,1,2,3\nb,4,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := filepath.Join(dir, "db")
	out, err := captureStdout(t, func() error {
		return cmdImport([]string{"-db", db, "-csv", csvPath})
	})
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if !strings.Contains(out, "imported 2 sequences") {
		t.Fatalf("import output: %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdCreate([]string{}); err == nil {
		t.Error("create without -db accepted")
	}
	if err := cmdGen([]string{"-db", filepath.Join(t.TempDir(), "x"), "-kind", "bogus"}); err == nil {
		t.Error("bogus kind accepted")
	}
	if err := cmdIndex([]string{"-db", "nowhere", "-name", "x", "-method", "bogus"}); err == nil {
		t.Error("bogus method accepted")
	}
	if err := cmdQuery([]string{"-db", "nowhere", "-eps", "1"}, false); err == nil {
		t.Error("missing database accepted")
	}
	if err := cmdTune([]string{"-db", "nowhere", "-counts", "zero"}); err == nil {
		t.Error("bad counts accepted")
	}
}

func TestExitCodes(t *testing.T) {
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Errorf("generic error -> %d, want 1", got)
	}
	if got := exitCode(fmt.Errorf("search: %w", context.DeadlineExceeded)); got != 3 {
		t.Errorf("deadline -> %d, want 3", got)
	}
	if got := exitCode(&wire.Error{Code: wire.CodeDeadline, Msg: "deadline exceeded"}); got != 3 {
		t.Errorf("wire deadline -> %d, want 3", got)
	}
	if got := exitCode(fmt.Errorf("search: %w", wire.ErrOverloaded)); got != 4 {
		t.Errorf("overloaded -> %d, want 4", got)
	}
	if got := exitCode(&wire.Error{Code: wire.CodeOverloaded, Msg: "server overloaded"}); got != 4 {
		t.Errorf("wire overloaded -> %d, want 4", got)
	}
}

// TestCLITimeout drives -timeout through the context plumbing: a deadline
// that has already expired must surface as context.DeadlineExceeded (exit
// code 3), not as a partial answer.
func TestCLITimeout(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db")
	if _, err := captureStdout(t, func() error {
		return cmdGen([]string{"-db", db, "-kind", "stocks", "-n", "10", "-seed", "3"})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdIndex([]string{"-db", db, "-name", "fast", "-method", "me", "-cats", "8", "-sparse"})
	}); err != nil {
		t.Fatal(err)
	}
	_, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-name", "fast", "-eps", "5",
			"-from", "stock-0001", "-start", "0", "-len", "10", "-timeout", "1ns"}, true)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if exitCode(err) != 3 {
		t.Fatalf("exit code %d, want 3", exitCode(err))
	}
	// Scan and knn honor the flag the same way.
	_, err = captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-eps", "5",
			"-from", "stock-0001", "-len", "10", "-timeout", "1ns"}, false)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("scan err = %v, want deadline", err)
	}
	_, err = captureStdout(t, func() error {
		return cmdKNN([]string{"-db", db, "-name", "fast", "-k", "3",
			"-from", "stock-0001", "-len", "10", "-timeout", "1ns"})
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("knn err = %v, want deadline", err)
	}
}

// TestCLIRemote points query/scan/knn at a live twsearchd-style server
// and checks the remote answers match the local ones.
func TestCLIRemote(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	if _, err := captureStdout(t, func() error {
		return cmdGen([]string{"-db", dir, "-kind", "stocks", "-n", "10", "-seed", "5"})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdIndex([]string{"-db", dir, "-name", "fast", "-method", "me", "-cats", "8", "-sparse"})
	}); err != nil {
		t.Fatal(err)
	}
	d, err := seqdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	qvals := d.Values("stock-0003")[5:17]
	var qparts []string
	for _, v := range qvals {
		qparts = append(qparts, strconv.FormatFloat(v, 'g', -1, 64))
	}
	qarg := strings.Join(qparts, ",")

	s := server.New(server.Config{})
	if err := s.AddDB("main", d); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
		<-serveErr
	}()
	addr := ln.Addr().String()

	local, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-db", dir, "-name", "fast", "-eps", "6", "-q", qarg}, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-addr", addr, "-dbname", "main", "-name", "fast", "-eps", "6", "-q", qarg}, true)
	})
	if err != nil {
		t.Fatalf("remote query: %v", err)
	}
	// Identical matches modulo the timing line: compare from the first
	// match row on, and the match counts up front.
	if strings.Fields(local)[0] != strings.Fields(remote)[0] {
		t.Fatalf("local found %s matches, remote %s", strings.Fields(local)[0], strings.Fields(remote)[0])
	}
	trim := func(s string) string {
		_, rest, _ := strings.Cut(s, "\n")
		return rest
	}
	if trim(local) != trim(remote) {
		t.Fatalf("remote matches differ:\nlocal:\n%s\nremote:\n%s", local, remote)
	}

	remoteScan, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-addr", addr, "-eps", "6", "-q", qarg}, false)
	})
	if err != nil {
		t.Fatalf("remote scan: %v", err)
	}
	if trim(local) != trim(remoteScan) {
		t.Fatalf("remote scan differs from local query:\n%s\nvs\n%s", local, remoteScan)
	}
	if out, err := captureStdout(t, func() error {
		return cmdKNN([]string{"-addr", addr, "-name", "fast", "-k", "3", "-q", qarg})
	}); err != nil || !strings.Contains(out, "3 nearest subsequences") {
		t.Fatalf("remote knn: %v\n%s", err, out)
	}

	// Remote mode without -q is a usage error, not a hang.
	if err := cmdQuery([]string{"-addr", addr, "-name", "fast", "-eps", "1", "-from", "stock-0001"}, true); err == nil {
		t.Fatal("remote -from accepted")
	}
}
