package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestCLILifecycle(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db")

	out, err := captureStdout(t, func() error {
		return cmdGen([]string{"-db", db, "-kind", "stocks", "-n", "15", "-seed", "7"})
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	if !strings.Contains(out, "generated 15 stocks sequences") {
		t.Fatalf("gen output: %q", out)
	}

	if _, err := captureStdout(t, func() error {
		return cmdIndex([]string{"-db", db, "-name", "fast", "-method", "me", "-cats", "10", "-sparse"})
	}); err != nil {
		t.Fatalf("index: %v", err)
	}

	out, err = captureStdout(t, func() error {
		return cmdStats([]string{"-db", db})
	})
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out, "sequences:      15") || !strings.Contains(out, `index "fast"`) {
		t.Fatalf("stats output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-name", "fast", "-eps", "8",
			"-from", "stock-0002", "-start", "10", "-len", "12", "-limit", "3"}, true)
	})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !strings.Contains(out, "matches in") || !strings.Contains(out, "stock-0002") {
		t.Fatalf("query output: %q", out)
	}

	scanOut, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-eps", "8",
			"-from", "stock-0002", "-start", "10", "-len", "12", "-limit", "3"}, false)
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	// Index and scan agree on the match count (first output token).
	if strings.Fields(out)[0] != strings.Fields(scanOut)[0] {
		t.Fatalf("query found %s matches, scan %s", strings.Fields(out)[0], strings.Fields(scanOut)[0])
	}

	out, err = captureStdout(t, func() error {
		return cmdKNN([]string{"-db", db, "-name", "fast", "-k", "4",
			"-from", "stock-0002", "-start", "10", "-len", "12"})
	})
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	if !strings.Contains(out, "4 nearest subsequences") {
		t.Fatalf("knn output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return cmdAlign([]string{"-db", db, "-seq", "stock-0002", "-start", "10", "-end", "20",
			"-from", "stock-0002", "-qstart", "10", "-qlen", "10"})
	})
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	if !strings.Contains(out, "= 0.0000") {
		t.Fatalf("self-alignment distance not zero: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return cmdTune([]string{"-db", db, "-counts", "4,16", "-queries", "2", "-eps", "5"})
	})
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	if !strings.Contains(out, "best count") {
		t.Fatalf("tune output: %q", out)
	}

	if _, err := captureStdout(t, func() error {
		return cmdDrop([]string{"-db", db, "-name", "fast"})
	}); err != nil {
		t.Fatalf("drop: %v", err)
	}
}

func TestCLIImport(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(csvPath, []byte("a,1,2,3\nb,4,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := filepath.Join(dir, "db")
	out, err := captureStdout(t, func() error {
		return cmdImport([]string{"-db", db, "-csv", csvPath})
	})
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if !strings.Contains(out, "imported 2 sequences") {
		t.Fatalf("import output: %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdCreate([]string{}); err == nil {
		t.Error("create without -db accepted")
	}
	if err := cmdGen([]string{"-db", filepath.Join(t.TempDir(), "x"), "-kind", "bogus"}); err == nil {
		t.Error("bogus kind accepted")
	}
	if err := cmdIndex([]string{"-db", "nowhere", "-name", "x", "-method", "bogus"}); err == nil {
		t.Error("bogus method accepted")
	}
	if err := cmdQuery([]string{"-db", "nowhere", "-eps", "1"}, false); err == nil {
		t.Error("missing database accepted")
	}
	if err := cmdTune([]string{"-db", "nowhere", "-counts", "zero"}); err == nil {
		t.Error("bad counts accepted")
	}
}
