// Command twlint runs twsearch's project-specific static analyzers over
// module packages. It is built purely on the Go standard library — no
// golang.org/x/tools — so the module stays dependency-free.
//
// Usage:
//
//	twlint [packages]
//
// where packages are directory paths or "./..."-style patterns (default
// "./..."). Findings print one per line as
//
//	file:line: [check-name] message
//
// and the command exits 1 when any finding survives //lint:ignore
// filtering, 2 on a load or type-check failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"twsearch/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("twlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listChecks := fs.Bool("checks", false, "list the registered checks and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: twlint [-checks] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listChecks {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}

	analyzers := lint.Analyzers()
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, "twlint:", err)
			return 2
		}
		for _, f := range lint.RunPackage(pkg, analyzers) {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				f.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, f.String())
			exit = 1
		}
	}
	return exit
}
