// Command twlint runs twsearch's project-specific static analyzers over
// module packages. It is built purely on the Go standard library — no
// golang.org/x/tools — so the module stays dependency-free.
//
// Usage:
//
//	twlint [-json] [packages]
//
// where packages are directory paths or "./..."-style patterns (default
// "./..."). Findings print one per line as
//
//	file:line: [check-name] message
//
// or, with -json, as one JSON object per line:
//
//	{"file":"...","line":N,"check":"...","message":"..."}
//
// In both modes the command exits 1 when any finding survives
// //lint:ignore filtering, 2 on a load or type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"twsearch/internal/lint"
)

// jsonFinding is the -json wire form of one finding, one object per line,
// stable for CI consumers.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("twlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listChecks := fs.Bool("checks", false, "list the registered checks and exit")
	asJSON := fs.Bool("json", false, "emit findings as one JSON object per line")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: twlint [-checks] [-json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listChecks {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}

	analyzers := lint.Analyzers()
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, "twlint:", err)
			return 2
		}
		for _, f := range lint.RunPackage(pkg, analyzers) {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				f.Pos.Filename = rel
			}
			if *asJSON {
				line, err := json.Marshal(jsonFinding{
					File:    f.Pos.Filename,
					Line:    f.Pos.Line,
					Check:   f.Check,
					Message: f.Message,
				})
				if err != nil {
					fmt.Fprintln(stderr, "twlint:", err)
					return 2
				}
				fmt.Fprintln(stdout, string(line))
			} else {
				fmt.Fprintln(stdout, f.String())
			}
			exit = 1
		}
	}
	return exit
}
