// Command twlint runs twsearch's project-specific static analyzers over
// module packages. It is built purely on the Go standard library — no
// golang.org/x/tools — so the module stays dependency-free.
//
// Usage:
//
//	twlint [-json] [-only checks] [-skip checks] [packages]
//
// where packages are directory paths or "./..."-style patterns (default
// "./..."). -only and -skip narrow the suite to (or away from) a
// comma-separated list of check names; an unknown name is an error, not a
// silent no-op. Findings print one per line as
//
//	file:line: [check-name] message
//
// or, with -json, as one JSON object per line:
//
//	{"file":"...","line":N,"check":"...","message":"..."}
//
// In both modes the command exits 1 when any finding survives
// //lint:ignore filtering, 2 on a load or type-check failure. The finding
// stream on stdout is byte-deterministic — findings are sorted by position,
// check and message — so golden diffs are stable; -timings prints the
// per-analyzer wall time summed over all packages to stderr, keeping the
// measurement out of the deterministic stream.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"twsearch/internal/lint"
)

// jsonFinding is the -json wire form of one finding, one object per line,
// stable for CI consumers.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// jsonTiming is the -json -timings wire form of one analyzer's wall time,
// printed to stderr so the stdout finding stream stays deterministic.
type jsonTiming struct {
	Analyzer  string `json:"analyzer"`
	ElapsedUS int64  `json:"elapsed_us"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("twlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listChecks := fs.Bool("checks", false, "list the registered checks and exit")
	asJSON := fs.Bool("json", false, "emit findings as one JSON object per line")
	timings := fs.Bool("timings", false, "print per-analyzer wall time to stderr")
	only := fs.String("only", "", "comma-separated checks to run, all others skipped")
	skip := fs.String("skip", "", "comma-separated checks to skip")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: twlint [-checks] [-json] [-timings] [-only checks] [-skip checks] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listChecks {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}

	analyzers, err := selectAnalyzers(lint.Analyzers(), *only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "twlint:", err)
		return 2
	}
	elapsed := make(map[string]time.Duration, len(analyzers))
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, "twlint:", err)
			return 2
		}
		findings, times := lint.RunPackageTimed(pkg, analyzers)
		for _, t := range times {
			elapsed[t.Name] += t.Elapsed
		}
		for _, f := range findings {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				f.Pos.Filename = rel
			}
			if *asJSON {
				line, err := json.Marshal(jsonFinding{
					File:    f.Pos.Filename,
					Line:    f.Pos.Line,
					Check:   f.Check,
					Message: f.Message,
				})
				if err != nil {
					fmt.Fprintln(stderr, "twlint:", err)
					return 2
				}
				fmt.Fprintln(stdout, string(line))
			} else {
				fmt.Fprintln(stdout, f.String())
			}
			exit = 1
		}
	}
	if *timings {
		// Analyzer registration order, not map order, so the report shape is
		// stable even though the numbers are not. Timings go to stderr in
		// both modes: stdout stays byte-deterministic for golden diffs.
		for _, a := range analyzers {
			if *asJSON {
				line, err := json.Marshal(jsonTiming{
					Analyzer:  a.Name,
					ElapsedUS: elapsed[a.Name].Microseconds(),
				})
				if err != nil {
					fmt.Fprintln(stderr, "twlint:", err)
					return 2
				}
				fmt.Fprintln(stderr, string(line))
			} else {
				fmt.Fprintf(stderr, "twlint: %-14s %s\n", a.Name, elapsed[a.Name].Round(time.Microsecond))
			}
		}
	}
	return exit
}

// selectAnalyzers narrows the registered suite by the -only and -skip
// lists. Unknown names are an error so a typo cannot silently run (or
// skip) the wrong set. Directive staleness under a partial run is handled
// by the lint package, which judges a //lint:ignore only when every check
// it names is in the running set.
func selectAnalyzers(all []*lint.Analyzer, only, skip string) ([]*lint.Analyzer, error) {
	byName := make(map[string]bool, len(all))
	for _, a := range all {
		byName[a.Name] = true
	}
	parse := func(list, flagName string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !byName[name] {
				return nil, fmt.Errorf("-%s: unknown check %q (run twlint -checks for the list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only, "only")
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip, "skip")
	if err != nil {
		return nil, err
	}
	if onlySet == nil && skipSet == nil {
		return all, nil
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only/-skip selected no checks")
	}
	return out, nil
}
