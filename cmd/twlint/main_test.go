package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata/src/"

// TestExitCodes pins the contract the Makefile depends on: clean packages
// exit 0, findings exit 1, bad arguments exit 2.
func TestExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer

	if code := run([]string{fixtures + "floateq/good"}, &out, &errOut); code != 0 {
		t.Errorf("good fixture: exit %d, output:\n%s%s", code, out.String(), errOut.String())
	}

	out.Reset()
	if code := run([]string{fixtures + "floateq/bad"}, &out, &errOut); code != 1 {
		t.Errorf("bad fixture: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("bad fixture output missing [floateq]: %q", out.String())
	}

	if code := run([]string{"no/such/dir"}, &out, &errOut); code != 2 {
		t.Errorf("missing dir: exit %d, want 2", code)
	}
}

// TestNegativeFixtures runs the driver over every analyzer's bad fixture —
// the acceptance gate that each check fails its negative example.
func TestNegativeFixtures(t *testing.T) {
	for _, dir := range []string{
		"panicpath", "errwrap", "floateq", "closecheck", "globalrand", "ctxloop",
		"boundscontract", "boundmark", "lockbalance", "goleak", "deferinloop",
		"poolbalance", "atomicmix", "joinbarrier",
		"wireconform", "ctxflow", "steadystate",
	} {
		var out, errOut bytes.Buffer
		if code := run([]string{fixtures + dir + "/bad"}, &out, &errOut); code != 1 {
			t.Errorf("%s/bad: exit %d, want 1 (stderr: %s)", dir, code, errOut.String())
		}
	}
}

// TestChecksFlag keeps the -checks listing wired up.
func TestChecksFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-checks"}, &out, &errOut); code != 0 {
		t.Fatalf("-checks: exit %d", code)
	}
	for _, name := range []string{
		"panicpath", "errwrap", "floateq", "closecheck", "globalrand", "ctxless-loop",
		"boundscontract", "lockbalance", "goleak", "deferinloop",
		"poolbalance", "atomicmix", "joinbarrier",
		"wireconform", "ctxflow", "steadystate",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-checks output missing %s:\n%s", name, out.String())
		}
	}
}

// TestOnlySkipFlags pins the suite-selection contract: -only narrows to the
// named checks, -skip removes them, an unknown name exits 2, and an ignore
// directive for a check outside the running set is not judged stale.
func TestOnlySkipFlags(t *testing.T) {
	var out, errOut bytes.Buffer

	if code := run([]string{"-only", "floateq", fixtures + "floateq/bad"}, &out, &errOut); code != 1 {
		t.Errorf("-only floateq on floateq/bad: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("-only floateq output missing [floateq]: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-skip", "floateq", fixtures + "floateq/bad"}, &out, &errOut); code != 0 {
		t.Errorf("-skip floateq on floateq/bad: exit %d, want 0, output:\n%s", code, out.String())
	}

	out.Reset()
	if code := run([]string{"-only", "panicpath", fixtures + "floateq/bad"}, &out, &errOut); code != 0 {
		t.Errorf("-only panicpath on floateq/bad: exit %d, want 0, output:\n%s", code, out.String())
	}

	// joinbarrier/ignored carries a //lint:ignore joinbarrier directive; a
	// run without joinbarrier active must not report it stale.
	out.Reset()
	if code := run([]string{"-only", "floateq", fixtures + "joinbarrier/ignored"}, &out, &errOut); code != 0 {
		t.Errorf("-only floateq on joinbarrier/ignored: exit %d, want 0, output:\n%s", code, out.String())
	}

	errOut.Reset()
	if code := run([]string{"-only", "nosuchcheck", fixtures + "floateq/good"}, &out, &errOut); code != 2 {
		t.Errorf("-only nosuchcheck: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nosuchcheck") {
		t.Errorf("unknown-check error does not name the check: %q", errOut.String())
	}

	errOut.Reset()
	if code := run([]string{"-skip", "nosuchcheck", fixtures + "floateq/good"}, &out, &errOut); code != 2 {
		t.Errorf("-skip nosuchcheck: exit %d, want 2", code)
	}
}

// TestTimingsFlag pins the -timings contract: per-analyzer wall time goes
// to stderr (JSON objects under -json), keeping stdout byte-deterministic.
func TestTimingsFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-timings", fixtures + "floateq/good"}, &out, &errOut); code != 0 {
		t.Fatalf("-json -timings good fixture: exit %d (stderr: %s)", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("timings leaked into the deterministic stdout stream: %q", out.String())
	}
	lines := strings.Split(strings.TrimSpace(errOut.String()), "\n")
	seen := make(map[string]bool)
	for _, line := range lines {
		var tm struct {
			Analyzer  string `json:"analyzer"`
			ElapsedUS int64  `json:"elapsed_us"`
		}
		if err := json.Unmarshal([]byte(line), &tm); err != nil {
			t.Fatalf("timing line is not valid JSON: %v\n%s", err, line)
		}
		seen[tm.Analyzer] = true
	}
	for _, name := range []string{"boundscontract", "poolbalance", "atomicmix", "joinbarrier"} {
		if !seen[name] {
			t.Errorf("no timing reported for %s:\n%s", name, errOut.String())
		}
	}
}

// TestJSONOutput pins the -json wire form: one object per line with file,
// line, check and message fields, same exit-code contract as text mode.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", fixtures + "floateq/bad"}, &out, &errOut); code != 1 {
		t.Fatalf("-json bad fixture: exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 finding line, got %d:\n%s", len(lines), out.String())
	}
	var f struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("finding is not valid JSON: %v\n%s", err, lines[0])
	}
	if f.Check != "floateq" || f.Line == 0 || f.File == "" || f.Message == "" {
		t.Errorf("incomplete finding object: %+v", f)
	}

	out.Reset()
	if code := run([]string{"-json", fixtures + "floateq/good"}, &out, &errOut); code != 0 {
		t.Errorf("-json good fixture: exit %d, want 0", code)
	}
	if out.Len() != 0 {
		t.Errorf("-json good fixture: unexpected output %q", out.String())
	}
}
