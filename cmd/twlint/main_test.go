package main

import (
	"bytes"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata/src/"

// TestExitCodes pins the contract the Makefile depends on: clean packages
// exit 0, findings exit 1, bad arguments exit 2.
func TestExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer

	if code := run([]string{fixtures + "floateq/good"}, &out, &errOut); code != 0 {
		t.Errorf("good fixture: exit %d, output:\n%s%s", code, out.String(), errOut.String())
	}

	out.Reset()
	if code := run([]string{fixtures + "floateq/bad"}, &out, &errOut); code != 1 {
		t.Errorf("bad fixture: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("bad fixture output missing [floateq]: %q", out.String())
	}

	if code := run([]string{"no/such/dir"}, &out, &errOut); code != 2 {
		t.Errorf("missing dir: exit %d, want 2", code)
	}
}

// TestNegativeFixtures runs the driver over every analyzer's bad fixture —
// the acceptance gate that each check fails its negative example.
func TestNegativeFixtures(t *testing.T) {
	for _, dir := range []string{
		"panicpath", "errwrap", "floateq", "closecheck", "globalrand", "ctxloop",
	} {
		var out, errOut bytes.Buffer
		if code := run([]string{fixtures + dir + "/bad"}, &out, &errOut); code != 1 {
			t.Errorf("%s/bad: exit %d, want 1 (stderr: %s)", dir, code, errOut.String())
		}
	}
}

// TestChecksFlag keeps the -checks listing wired up.
func TestChecksFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-checks"}, &out, &errOut); code != 0 {
		t.Fatalf("-checks: exit %d", code)
	}
	for _, name := range []string{"panicpath", "errwrap", "floateq", "closecheck", "globalrand", "ctxless-loop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-checks output missing %s:\n%s", name, out.String())
		}
	}
}
