// Command benchpar measures single-query latency under intra-query
// parallelism. It builds the stock-like workload once, warms the index, then
// runs the same query set serially and at 1, 2, 4, and GOMAXPROCS workers
// per query (SearchOptions.Parallelism), reporting mean latency per worker
// count and the speedup over the serial traversal, written as JSON (default
// BENCH_parallel_query.json) for the CI trend line.
//
// Unlike benchconc — which measures many queries in flight at once — each
// query here runs alone: the parallelism is inside one Search call. Speedup
// therefore requires real cores; on a single-CPU machine every worker count
// measures the same serial work plus coordination overhead. The report's
// gomaxprocs field says which situation produced it.
//
// Usage:
//
//	benchpar [-scale f] [-queries n] [-eps f] [-seed n] [-out file]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"twsearch/internal/benchrun"
	"twsearch/seqdb"
)

// result is one worker-count measurement.
type result struct {
	Workers    int     `json:"workers"`
	Queries    int     `json:"queries"`
	MeanMs     float64 `json:"mean_latency_ms"`
	P99Ms      float64 `json:"p99_latency_ms"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Speedup    float64 `json:"speedup_vs_serial"`
	Answers    uint64  `json:"answers"`
}

// report is the emitted JSON document.
type report struct {
	Scale float64 `json:"scale"`
	Eps   float64 `json:"eps"`
	Seed  int64   `json:"seed"`
	benchrun.Env
	Runs []result `json:"runs"`
}

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale; 1.0 = paper scale (545 sequences)")
	queries := flag.Int("queries", 50, "queries per worker-count measurement")
	eps := flag.Float64("eps", 10, "distance threshold")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "BENCH_parallel_query.json", "output JSON path")
	flag.Parse()

	if err := run(*scale, *queries, *eps, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchpar:", err)
		os.Exit(1)
	}
}

func run(scale float64, numQueries int, eps float64, seed int64, out string) error {
	dir, err := os.MkdirTemp("", "twsearch-benchpar-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	data, qs := benchrun.StockWorkload(scale, 2, numQueries, seed)

	db, err := seqdb.Create(dir)
	if err != nil {
		return err
	}
	defer db.Close()
	for i := 0; i < data.Len(); i++ {
		seq := data.Seq(i)
		if err := db.Add(seq.ID, seq.Values); err != nil {
			return err
		}
	}
	if err := db.BuildIndex("bench", seqdb.IndexSpec{
		Method: seqdb.MethodMaxEntropy, Categories: 20, Sparse: true,
	}); err != nil {
		return err
	}

	// Warm the buffer pool so every measured run sees the same cache state;
	// the parallelism story is CPU fan-out on a warmed handle.
	if _, _, err := db.Search("bench", qs[0], eps); err != nil {
		return err
	}

	env := benchrun.CaptureEnv()
	workerCounts := []int{1, 2, 4, env.GOMAXPROCS}
	rep := report{Scale: scale, Eps: eps, Seed: seed, Env: env}
	seen := map[int]bool{}
	for _, w := range workerCounts {
		if seen[w] {
			continue
		}
		seen[w] = true
		// The fan-out is deliberately not capped at GOMAXPROCS: on a small
		// machine the multi-worker rows then measure the coordination
		// overhead of the parallel path (the interesting number there),
		// while on a >= w-core machine they measure real speedup.
		r, err := measure(db, qs, eps, w, w)
		if err != nil {
			return err
		}
		if len(rep.Runs) > 0 {
			r.Speedup = rep.Runs[0].MeanMs / r.MeanMs
		} else {
			r.Speedup = 1
		}
		rep.Runs = append(rep.Runs, r)
		fmt.Printf("workers=%-3d mean=%8.3fms  p99=%8.3fms  speedup=%.2fx  answers=%d\n",
			r.Workers, r.MeanMs, r.P99Ms, r.Speedup, r.Answers)
	}

	return benchrun.WriteJSON(out, rep)
}

// measure runs the query batch one query at a time, each search using par
// worker goroutines. Answer totals must agree across worker counts — the
// determinism guarantee makes any divergence a bug, so it is checked by the
// caller comparing rows.
func measure(db *seqdb.DB, qs [][]float64, eps float64, label, par int) (result, error) {
	ctx := context.Background()
	opts := seqdb.SearchOptions{Parallelism: par}
	lats := make([]time.Duration, 0, len(qs))
	var answers uint64
	start := time.Now()
	for _, q := range qs {
		t0 := time.Now()
		matches, _, err := db.SearchWith(ctx, "bench", q, eps, opts)
		if err != nil {
			return result{}, err
		}
		lats = append(lats, time.Since(t0))
		answers += uint64(len(matches))
	}
	elapsed := time.Since(start)

	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p99 := benchrun.Percentile(sorted, 99)
	return result{
		Workers:    label,
		Queries:    len(qs),
		MeanMs:     float64(sum.Microseconds()) / 1000 / float64(len(lats)),
		P99Ms:      float64(p99.Microseconds()) / 1000,
		ElapsedSec: elapsed.Seconds(),
		Answers:    answers,
	}, nil
}
