// Command twtree inspects, validates, and migrates the disk-resident
// suffix tree of a twsearch database index.
//
// Usage:
//
//	twtree -db DIR -name INDEX           # header + structural validation
//	twtree -db DIR -name INDEX -dump 3   # also dump the tree to depth 3
//	twtree rewrite -db DIR -name INDEX -encoding v2 [-out FILE] [-pool N]
//
// rewrite re-serializes an index tree under another node record encoding
// (v1 fixed-width, v2 compact varint, or v3 = v2 plus per-child envelope
// hulls) without touching the logical tree. Rewriting to v3 reads the
// database's data and scheme files to aggregate the hulls. Without -out it
// atomically replaces the index file in place; the database must not be
// open elsewhere while it runs.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"twsearch/internal/categorize"
	"twsearch/internal/disktree"
	"twsearch/internal/sequence"
	"twsearch/internal/suffixtree"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "rewrite" {
		if err := cmdRewrite(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "twtree:", err)
			os.Exit(1)
		}
		return
	}
	db := flag.String("db", "", "database directory")
	name := flag.String("name", "", "index name")
	dump := flag.Int("dump", 0, "dump the tree to this depth (0 = no dump)")
	pool := flag.Int("pool", 256, "buffer pool pages")
	flag.Parse()
	if *db == "" || *name == "" {
		fmt.Fprintln(os.Stderr, "usage: twtree -db DIR -name INDEX [-dump N] | twtree rewrite -db DIR -name INDEX -encoding v1|v2|v3")
		os.Exit(2)
	}
	if err := run(*db, *name, *dump, *pool); err != nil {
		fmt.Fprintln(os.Stderr, "twtree:", err)
		os.Exit(1)
	}
}

// cmdRewrite migrates one index file between node record encodings.
func cmdRewrite(args []string) error {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	name := fs.String("name", "", "index name")
	encName := fs.String("encoding", "", "target encoding: v1, v2, or v3")
	out := fs.String("out", "", "write here instead of replacing the index file in place")
	pool := fs.Int("pool", 256, "buffer pool pages")
	fs.Parse(args)
	if *db == "" || *name == "" || *encName == "" {
		return fmt.Errorf("rewrite: -db, -name, and -encoding required")
	}
	enc, err := disktree.ParseEncoding(*encName)
	if err != nil {
		return fmt.Errorf("rewrite: %w", err)
	}
	inPath := filepath.Join(*db, "idx-"+*name+".twt")
	outPath := *out
	inPlace := outPath == ""
	if inPlace {
		outPath = inPath + ".rewrite"
	}
	// v3 aggregates envelope hulls from edge labels; reference-layout trees
	// resolve labels through the categorized text store, so load it whenever
	// the target might need it.
	var store *suffixtree.TextStore
	if enc == disktree.EncodingV3 {
		store, err = loadStore(*db, *name)
		if err != nil {
			return fmt.Errorf("rewrite to v3: %w", err)
		}
	}
	f, err := disktree.Rewrite(inPath, outPath, *pool, enc, store)
	if err != nil {
		if inPlace {
			os.Remove(outPath)
		}
		return err
	}
	size := f.SizeBytes()
	nodes := f.NumNodes()
	if err := f.Close(); err != nil {
		return err
	}
	if inPlace {
		if err := os.Rename(outPath, inPath); err != nil {
			os.Remove(outPath)
			return err
		}
		outPath = inPath
	}
	fmt.Printf("rewrote %s as %s: %d KB, %d nodes -> %s\n", inPath, enc, size/1024, nodes, outPath)
	return nil
}

// loadStore rebuilds the categorized text store of one index from the
// database's data and scheme files — what both validation and v3 hull
// aggregation resolve reference-layout edge labels through.
func loadStore(dbDir, name string) (*suffixtree.TextStore, error) {
	data, err := sequence.LoadFile(filepath.Join(dbDir, "data.twdb"))
	if err != nil {
		return nil, fmt.Errorf("loading dataset: %w", err)
	}
	sf, err := os.Open(filepath.Join(dbDir, "idx-"+name+".cat"))
	if err != nil {
		return nil, fmt.Errorf("loading scheme: %w", err)
	}
	scheme, err := categorize.ReadScheme(sf)
	sf.Close()
	if err != nil {
		return nil, err
	}
	store := suffixtree.NewTextStore()
	for i := 0; i < data.Len(); i++ {
		store.Add(scheme.Encode(data.Values(i)))
	}
	return store, nil
}

func run(dbDir, name string, dump, pool int) error {
	sf, err := os.Open(filepath.Join(dbDir, "idx-"+name+".cat"))
	if err != nil {
		return fmt.Errorf("loading scheme: %w", err)
	}
	scheme, err := categorize.ReadScheme(sf)
	sf.Close()
	if err != nil {
		return err
	}
	store, err := loadStore(dbDir, name)
	if err != nil {
		return err
	}

	f, err := disktree.Open(filepath.Join(dbDir, "idx-"+name+".twt"), pool, true)
	if err != nil {
		return err
	}
	defer f.Close()

	fmt.Printf("index %q of %s\n", name, dbDir)
	fmt.Printf("  scheme:     %s, %d categories\n", scheme.Kind(), scheme.NumCategories())
	fmt.Printf("  sparse:     %v\n", f.Sparse())
	fmt.Printf("  layout:     %s\n", f.Layout())
	fmt.Printf("  encoding:   %s\n", f.Encoding())
	fmt.Printf("  file:       %d KB (%d nodes, %d leaves, %d label symbols)\n",
		f.SizeBytes()/1024, f.NumNodes(), f.NumLeaves(), f.TotalLabelSymbols())
	if f.Encoding() == disktree.EncodingV3 {
		entries, bytes, err := envelopeStats(f)
		if err != nil {
			return fmt.Errorf("envelope stats: %w", err)
		}
		perNode := 0.0
		if n := f.NumNodes(); n > 0 {
			perNode = float64(bytes) / float64(n)
		}
		fmt.Printf("  envelopes:  present (format v3): %d child hulls, %d bytes (%.2f B/node)\n",
			entries, bytes, perNode)
	} else {
		fmt.Printf("  envelopes:  none (format %s; `twtree rewrite -encoding v3` adds them)\n", f.Encoding())
	}

	st, err := f.Validate(store)
	if err != nil {
		fmt.Printf("  VALIDATION FAILED: %v\n", err)
		return err
	}
	fmt.Printf("  validation: OK (%d nodes, %d leaves, max depth %d)\n", st.Nodes, st.Leaves, st.MaxDepth)

	if dump > 0 {
		return dumpTree(f, store, dump)
	}
	return nil
}

// envelopeStats walks every internal node and totals the per-child hull
// profiles a v3 file persists, sizing each exactly as the codec does (per
// segment, two signed varints: the segment minimum and its span) so the
// reported overhead is the real on-disk cost of the envelope tier.
func envelopeStats(f *disktree.File) (entries int64, bytes int64, err error) {
	var scratch [2 * binary.MaxVarintLen64]byte
	var n disktree.Node
	var walk func(p disktree.Ptr) error
	walk = func(p disktree.Ptr) error {
		if err := f.ReadNodeInto(p, &n); err != nil {
			return err
		}
		if n.Leaf {
			return nil
		}
		kids := make([]disktree.ChildRef, len(n.Children))
		copy(kids, n.Children)
		for _, c := range kids {
			entries++
			for _, g := range c.Seg {
				w := binary.PutVarint(scratch[:], int64(g.Lo))
				w += binary.PutVarint(scratch[:], int64(g.Hi)-int64(g.Lo))
				bytes += int64(w)
			}
			if err := walk(c.Ptr); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(f.Root()); err != nil {
		return 0, 0, err
	}
	return entries, bytes, nil
}

func dumpTree(f *disktree.File, store *suffixtree.TextStore, maxDepth int) error {
	var walk func(p disktree.Ptr, depth int) error
	walk = func(p disktree.Ptr, depth int) error {
		if depth > maxDepth {
			return nil
		}
		n, err := f.ReadNode(p)
		if err != nil {
			return err
		}
		var label strings.Builder
		for i := 0; i < int(n.LabelLen); i++ {
			if i > 0 {
				label.WriteByte(' ')
			}
			var sym suffixtree.Symbol
			if len(n.Label) > 0 {
				sym = n.Label[i]
			} else {
				sym = store.Sym(int(n.LabelSeq), int(n.LabelStart)+i)
			}
			if suffixtree.IsTerminator(sym) {
				fmt.Fprintf(&label, "$%d", -int(sym)-1)
			} else {
				fmt.Fprintf(&label, "%d", sym)
			}
		}
		indent := strings.Repeat("  ", depth)
		if n.Leaf {
			fmt.Printf("%s<%s> leaf (seq=%d pos=%d run=%d)\n", indent, label.String(), n.LabelSeq, n.Pos, n.RunLen)
			return nil
		}
		what := "node"
		if depth == 0 {
			what = "root"
		}
		fmt.Printf("%s<%s> %s, %d children\n", indent, label.String(), what, len(n.Children))
		if depth == maxDepth {
			return nil
		}
		for _, c := range n.Children {
			if err := walk(c.Ptr, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(f.Root(), 0)
}
