package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twsearch/seqdb"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestTwtreeValidateAndDump(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := seqdb.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Add("a", []float64{1, 2, 3, 2, 1, 2, 3})
	db.Add("b", []float64{3, 2, 1, 1, 1})
	db.Save()
	if err := db.BuildIndex("x", seqdb.IndexSpec{Method: seqdb.MethodMaxEntropy, Categories: 3, Sparse: true}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	out, err := captureStdout(t, func() error { return run(dir, "x", 0, 16) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "validation: OK") {
		t.Fatalf("output: %q", out)
	}
	if !strings.Contains(out, "sparse:     true") {
		t.Fatalf("sparse flag missing: %q", out)
	}

	out, err = captureStdout(t, func() error { return run(dir, "x", 2, 16) })
	if err != nil {
		t.Fatalf("run with dump: %v", err)
	}
	if !strings.Contains(out, "root") || !strings.Contains(out, "leaf") {
		t.Fatalf("dump output: %q", out)
	}

	if err := run(dir, "missing", 0, 16); err == nil {
		t.Error("missing index accepted")
	}
	if err := run(t.TempDir(), "x", 0, 16); err == nil {
		t.Error("missing database accepted")
	}
}
