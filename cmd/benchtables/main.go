// Command benchtables regenerates the paper's evaluation artifacts: Tables
// 1-3, Figures 4-5, and the repository's ablation studies. At the default
// -scale 1 the workloads match the paper's (545 stock-like sequences of
// average length 232; artificial random walks up to 10000x200).
//
// Usage:
//
//	benchtables [-scale f] [-queries n] [-seed n] [-dir d] [-only list]
//
// -only takes a comma-separated subset of: t1,t2,t3,f4,f5,ablations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"twsearch/internal/benchrun"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale; 1.0 = paper scale")
	queries := flag.Int("queries", 10, "queries per measurement")
	seed := flag.Int64("seed", 1, "generator seed")
	dir := flag.String("dir", "", "work directory for index files (default: temp dir)")
	only := flag.String("only", "", "comma-separated subset: t1,t2,t3,f4,f5,ablations")
	dataKind := flag.String("workload", "stocks", "table workload: stocks or artificial")
	csvDir := flag.String("csv", "", "also write each table/figure as CSV into this directory")
	flag.Parse()

	workDir := *dir
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "twsearch-bench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(workDir)
	}

	cfg := benchrun.Config{
		Scale:    *scale,
		Queries:  *queries,
		Seed:     *seed,
		Dir:      workDir,
		Workload: benchrun.Workload(*dataKind),
		Out:      os.Stdout,
	}

	want := map[string]bool{}
	if *only == "" {
		for _, k := range []string{"t1", "t2", "t3", "f4", "f5", "ablations"} {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}

	run := func(name string, f func() error) {
		if !want[name] {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("  [%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	writeCSV := func(name string, write func(w io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	fmt.Printf("twsearch benchtables: scale=%.2f queries=%d seed=%d\n\n", *scale, *queries, *seed)
	run("t1", func() error {
		res, err := benchrun.Table1(cfg)
		if err != nil {
			return err
		}
		return writeCSV("table1.csv", func(w io.Writer) error { return benchrun.WriteTable1CSV(w, res) })
	})
	run("t2", func() error {
		res, err := benchrun.Table2(cfg)
		if err != nil {
			return err
		}
		return writeCSV("table2.csv", func(w io.Writer) error { return benchrun.WriteTable2CSV(w, res) })
	})
	run("t3", func() error {
		rows, err := benchrun.Table3(cfg)
		if err != nil {
			return err
		}
		return writeCSV("table3.csv", func(w io.Writer) error { return benchrun.WriteTable3CSV(w, rows) })
	})
	run("f4", func() error {
		rows, err := benchrun.Figure4(cfg)
		if err != nil {
			return err
		}
		return writeCSV("figure4.csv", func(w io.Writer) error { return benchrun.WriteFigureCSV(w, "avg_len", rows) })
	})
	run("f5", func() error {
		rows, err := benchrun.Figure5(cfg)
		if err != nil {
			return err
		}
		return writeCSV("figure5.csv", func(w io.Writer) error { return benchrun.WriteFigureCSV(w, "num_seqs", rows) })
	})
	run("ablations", func() error {
		if _, err := benchrun.AblationSparse(cfg); err != nil {
			return err
		}
		if _, err := benchrun.AblationPruning(cfg); err != nil {
			return err
		}
		if _, err := benchrun.AblationWindow(cfg); err != nil {
			return err
		}
		if _, err := benchrun.AblationBufferPool(cfg); err != nil {
			return err
		}
		_, err := benchrun.AblationQueryLength(cfg)
		return err
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
