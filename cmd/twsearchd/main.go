// Command twsearchd serves one or more seqdb databases over the twsearch
// wire protocol (internal/wire). It is the network front end for the
// paper's search engine: clients stream subsequence matches without
// loading the index locally.
//
// Usage:
//
//	twsearchd -db [name=]dir [-db ...] [-route [name=]leg,leg,...] [-addr host:port] [flags]
//
// A -db dir may be a plain database directory or a sharded database root
// (holding a MANIFEST.shards); sharding is auto-detected and searches fan
// out over the shards. A -route mount assembles a routing tier over
// comma-separated legs — each leg a local directory (plain or sharded) or
// `@addr/db`, a database mounted on another twsearchd — serving them as
// one logical database with consecutive legs holding consecutive slices
// of the sequence numbering.
//
// SIGINT/SIGTERM trigger a graceful drain: listeners close, in-flight
// searches are canceled through their contexts, and the process exits
// once every connection has been answered (or -drain-timeout expires).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"twsearch/seqdb"
	"twsearch/seqdb/server"
)

// dbFlag collects repeated -db [name=]dir mounts in order.
type dbFlag struct {
	names []string
	dirs  []string
}

func (f *dbFlag) String() string { return strings.Join(f.dirs, ",") }

func (f *dbFlag) Set(v string) error {
	name, dir := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, dir = v[:i], v[i+1:]
	}
	if dir == "" {
		return errors.New("empty database dir")
	}
	if name == "" {
		name = filepath.Base(filepath.Clean(dir))
	}
	f.names = append(f.names, name)
	f.dirs = append(f.dirs, dir)
	return nil
}

// routeFlag collects repeated -route [name=]leg,leg,... routed mounts.
type routeFlag struct {
	names []string
	specs [][]string
}

func (f *routeFlag) String() string {
	parts := make([]string, len(f.specs))
	for i, legs := range f.specs {
		parts[i] = strings.Join(legs, ",")
	}
	return strings.Join(parts, " ")
}

func (f *routeFlag) Set(v string) error {
	name, spec := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, spec = v[:i], v[i+1:]
	}
	if spec == "" {
		return errors.New("empty route spec")
	}
	if name == "" {
		name = "routed"
	}
	legs := strings.Split(spec, ",")
	for _, leg := range legs {
		if strings.TrimSpace(leg) == "" {
			return fmt.Errorf("route %q has an empty leg", v)
		}
	}
	f.names = append(f.names, name)
	f.specs = append(f.specs, legs)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "twsearchd:", err)
		os.Exit(1)
	}
}

// run is main without the exit: the smoke test drives it in-process,
// learning the bound address from ready and stopping it with a signal.
func run(args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("twsearchd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var dbs dbFlag
	fs.Var(&dbs, "db", "database to serve, `[name=]dir` (repeatable; name defaults to the dir's base name; sharded roots auto-detected)")
	var routes routeFlag
	fs.Var(&routes, "route", "routed database, `[name=]leg,leg,...` where a leg is a local dir or @addr/db (repeatable; name defaults to \"routed\")")
	addr := fs.String("addr", "127.0.0.1:7433", "listen address (use :0 for an ephemeral port)")
	maxInFlight := fs.Int("max-in-flight", 0, "max concurrent searches before overload fast-fail (0 = default)")
	searchTimeout := fs.Duration("search-timeout", 0, "server-side cap per search (0 = none)")
	maxPar := fs.Int("max-par", 0, "max worker goroutines one search may use; caps the client hint (0 = serial only)")
	idleTimeout := fs.Duration("idle-timeout", 0, "drop connections idle this long (0 = default)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	backendName := fs.String("backend", "", "storage backend for local index trees: pool (default), mmap, or auto")
	envName := fs.String("envelopes", "", "envelope lower-bound cascade for local searches: auto (default, on), on, or off")
	quiet := fs.Bool("q", false, "suppress per-request access logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(dbs.dirs) == 0 && len(routes.specs) == 0 {
		return errors.New("no databases: pass at least one -db [name=]dir or -route [name=]leg,...")
	}
	backend, err := seqdb.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	envelopes, err := seqdb.ParseEnvelopeMode(*envName)
	if err != nil {
		return err
	}
	openOpts := seqdb.OpenOptions{Backend: backend, Envelopes: envelopes}

	logf := func(format string, args ...any) {
		fmt.Fprintf(stdout, time.Now().Format("2006-01-02T15:04:05.000 ")+format+"\n", args...)
	}
	cfg := server.Config{
		MaxInFlight:         *maxInFlight,
		SearchTimeout:       *searchTimeout,
		IdleTimeout:         *idleTimeout,
		MaxQueryParallelism: *maxPar,
	}
	if !*quiet {
		cfg.Logf = logf
	}
	s := server.New(cfg)
	var mounted []func() error
	defer func() {
		for _, closeFn := range mounted {
			closeFn()
		}
	}()
	for i, dir := range dbs.dirs {
		if seqdb.IsSharded(dir) {
			db, err := seqdb.OpenShardedWith(dir, openOpts)
			if err != nil {
				return fmt.Errorf("open sharded %s: %w", dir, err)
			}
			mounted = append(mounted, db.Close)
			if err := s.AddSharded(dbs.names[i], db); err != nil {
				return err
			}
			logf("mounted sharded db %q from %s (%d sequences over %d shards, indexes: %s)",
				dbs.names[i], dir, db.Len(), db.Shards(), strings.Join(db.Indexes(), ", "))
			continue
		}
		db, err := seqdb.OpenWith(dir, openOpts)
		if err != nil {
			return fmt.Errorf("open %s: %w", dir, err)
		}
		mounted = append(mounted, db.Close)
		if err := s.AddDB(dbs.names[i], db); err != nil {
			return err
		}
		logf("mounted db %q from %s (%d sequences, indexes: %s)",
			dbs.names[i], dir, db.Len(), strings.Join(db.Indexes(), ", "))
	}
	for i, legSpecs := range routes.specs {
		legs := make([]server.Leg, len(legSpecs))
		for j, spec := range legSpecs {
			leg, closeFn, err := server.ParseLegSpecWith(spec, openOpts)
			if err != nil {
				return fmt.Errorf("route %q leg %s: %w", routes.names[i], spec, err)
			}
			mounted = append(mounted, closeFn)
			legs[j] = leg
		}
		router, err := server.NewRouter(context.Background(), legs)
		if err != nil {
			return fmt.Errorf("route %q: %w", routes.names[i], err)
		}
		if err := s.AddSource(routes.names[i], router); err != nil {
			return err
		}
		total := 0
		for _, r := range router.ShardRanges() {
			total += r.Count
		}
		logf("mounted routed db %q over %d legs (%d sequences, %d shards)",
			routes.names[i], router.Legs(), total, len(router.ShardRanges()))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	select {
	case sig := <-sigCh:
		logf("received %v, draining (timeout %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		shutdownErr := s.Shutdown(ctx)
		if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
			return err
		}
		if shutdownErr != nil {
			return fmt.Errorf("drain: %w", shutdownErr)
		}
		m := s.Metrics()
		logf("drained cleanly: %d requests served, %d matches streamed", m.Requests, m.MatchesStreamed)
		return nil
	case err := <-serveErr:
		return err
	}
}
