package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"twsearch/seqdb"
	"twsearch/seqdb/client"
)

// buildTestDB creates an on-disk database with a sparse max-entropy index
// and returns its dir plus the answers for a reference query.
func buildTestDB(t *testing.T) (dir string, query []float64, want []seqdb.Match) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "stocks")
	db, err := seqdb.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		vals := make([]float64, 64)
		for j := range vals {
			vals[j] = 4*math.Sin(float64(j)/5+float64(i)) + float64(i%4)
		}
		if err := db.Add(fmt.Sprintf("stock-%02d", i), vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("fast", seqdb.IndexSpec{
		Method: seqdb.MethodMaxEntropy, Categories: 8, Sparse: true,
	}); err != nil {
		t.Fatal(err)
	}
	query = append([]float64(nil), db.Values("stock-05")[8:28]...)
	want, _, err = db.Search("fast", query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference query found nothing")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, query, want
}

// TestDaemonSmoke is the end-to-end drill from the issue: boot the daemon
// on an ephemeral port, hit it with concurrent clients, then deliver a
// real SIGTERM and require a clean drain.
func TestDaemonSmoke(t *testing.T) {
	dir, query, want := buildTestDB(t)

	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-db", "main=" + dir, "-q"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			got, _, err := c.Search(context.Background(), "main", "fast", query, 3)
			if err != nil {
				errs[w] = err
				return
			}
			if len(got) != len(want) {
				errs[w] = fmt.Errorf("client %d: %d matches, want %d", w, len(got), len(want))
				return
			}
			for i := range got {
				if got[i] != want[i] ||
					math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
					errs[w] = fmt.Errorf("client %d: match %d differs: %+v != %+v", w, i, got[i], want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// A real SIGTERM, delivered to ourselves, must drain the daemon.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("no drain confirmation in log:\n%s", out.String())
	}
}

func TestDaemonRejectsNoDB(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, nil); err == nil || !strings.Contains(err.Error(), "no databases") {
		t.Fatalf("err = %v, want no-databases error", err)
	}
}

func TestDBFlagParsing(t *testing.T) {
	var f dbFlag
	if err := f.Set("/data/stocks"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("prod=/data/other"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	if f.names[0] != "stocks" || f.names[1] != "prod" || f.dirs[1] != "/data/other" {
		t.Fatalf("parsed %+v", f)
	}
}
