// Command benchlb measures what the envelope lower-bound cascade saves.
// It builds the stock workload once, indexes it under the v2 (row-tier
// envelopes only) and v3 (row tier plus persisted subtree hulls)
// encodings, then replays the query batch over every (encoding, backend,
// serial/parallel) combination twice — cascade on and cascade off — and
// reports the FilterCells / NodesVisited reduction. The cascade is a
// pure work optimization: every run's answers are cross-checked
// match-for-match (IDs, offsets, and float64 distance bits) against the
// cascade-disabled baseline, and any divergence is a hard failure. The
// result is written as JSON (default BENCH_envelope.json) for the CI
// trend line.
//
// Usage:
//
//	benchlb [-scale f] [-queries n] [-eps f] [-par n] [-seed n] [-out file]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"twsearch/internal/benchrun"
	"twsearch/internal/workload"
	"twsearch/seqdb"
)

// measurement is one cascade mode's totals over the query batch.
type measurement struct {
	FilterCells    uint64  `json:"filter_cells"`
	NodesVisited   uint64  `json:"nodes_visited"`
	PagesRead      uint64  `json:"pages_read"`
	LBCells        uint64  `json:"lb_cells"`
	EnvelopePruned uint64  `json:"envelope_pruned"`
	Answers        uint64  `json:"answers"`
	ElapsedSec     float64 `json:"elapsed_sec"`
}

// result compares cascade on vs off for one (encoding, backend,
// parallelism) cell of the matrix.
type result struct {
	Encoding         string      `json:"encoding"`
	Backend          string      `json:"backend"`
	Parallelism      int         `json:"parallelism"`
	Cascade          measurement `json:"cascade"`
	Baseline         measurement `json:"baseline"`
	FilterCellsRatio float64     `json:"filter_cells_ratio"`
	NodesRatio       float64     `json:"nodes_ratio"`
	Identical        bool        `json:"identical"`
}

// report is the emitted JSON document.
type report struct {
	Scale   float64 `json:"scale"`
	Eps     float64 `json:"eps"`
	Seed    int64   `json:"seed"`
	Queries int     `json:"queries"`
	benchrun.Env
	Runs []result `json:"runs"`
}

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale; 1.0 = paper scale (545 sequences)")
	queries := flag.Int("queries", 50, "queries per measurement")
	qlen := flag.Int("qlen", 40, "average query length (queries are cut from the stock data)")
	eps := flag.Float64("eps", 4, "distance threshold")
	par := flag.Int("par", 3, "worker count for the parallel runs")
	cats := flag.Int("cats", 200, "categories (fine-grained, so category intervals stay narrow against eps)")
	window := flag.Int("window", 2, "warping window half-width (0 = none)")
	sparse := flag.Bool("sparse", false, "sparse suffix tree")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "BENCH_envelope.json", "output JSON path")
	flag.Parse()

	if err := run(*scale, *queries, *qlen, *eps, *par, *cats, *window, *sparse, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchlb:", err)
		os.Exit(1)
	}
}

func run(scale float64, numQueries, qlen int, eps float64, par, cats, window int, sparse bool, seed int64, out string) error {
	dir, err := os.MkdirTemp("", "twsearch-benchlb-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	data, _ := benchrun.StockWorkload(scale, 2, 0, seed)
	qs := workload.QueriesRand(rand.New(rand.NewSource(seed+1)), data,
		workload.QueryConfig{Count: numQueries, AvgLen: qlen})

	db, err := seqdb.Create(dir)
	if err != nil {
		return err
	}
	for i := 0; i < data.Len(); i++ {
		seq := data.Seq(i)
		if err := db.Add(seq.ID, seq.Values); err != nil {
			db.Close()
			return err
		}
	}
	if err := db.Save(); err != nil {
		db.Close()
		return err
	}
	encodings := []seqdb.Encoding{seqdb.EncodingV2, seqdb.EncodingV3}
	for _, enc := range encodings {
		if err := db.BuildIndex("bench-"+enc.String(), seqdb.IndexSpec{
			Method: seqdb.MethodMaxEntropy, Categories: cats, Sparse: sparse, Window: window, Encoding: enc,
		}); err != nil {
			db.Close()
			return err
		}
	}
	if err := db.Close(); err != nil {
		return err
	}

	rep := report{Scale: scale, Eps: eps, Seed: seed, Queries: len(qs), Env: benchrun.CaptureEnv()}
	for _, enc := range encodings {
		for _, backend := range []seqdb.Backend{seqdb.BackendPool, seqdb.BackendMmap} {
			for _, p := range []int{1, par} {
				r, err := measure(dir, "bench-"+enc.String(), qs, eps, backend, p)
				if err != nil {
					return err
				}
				r.Encoding = enc.String()
				rep.Runs = append(rep.Runs, r)
				fmt.Printf("%-3s %-5s par=%d  cells %8d -> %8d (%5.1fx)  nodes %7d -> %7d (%4.1fx)  pruned=%d\n",
					r.Encoding, r.Backend, r.Parallelism,
					r.Baseline.FilterCells, r.Cascade.FilterCells, r.FilterCellsRatio,
					r.Baseline.NodesVisited, r.Cascade.NodesVisited, r.NodesRatio,
					r.Cascade.EnvelopePruned)
			}
		}
	}

	return benchrun.WriteJSON(out, rep)
}

// measure replays the query batch through two handles onto the same index
// files — cascade enabled and disabled — and cross-checks every answer.
func measure(dir, index string, qs [][]float64, eps float64, backend seqdb.Backend, par int) (result, error) {
	on, err := seqdb.OpenWith(dir, seqdb.OpenOptions{Backend: backend})
	if err != nil {
		return result{}, err
	}
	defer on.Close()
	off, err := seqdb.OpenWith(dir, seqdb.OpenOptions{Backend: backend, Envelopes: seqdb.EnvelopesOff})
	if err != nil {
		return result{}, err
	}
	defer off.Close()

	res := result{Backend: string(backend), Parallelism: par, Identical: true}
	ctx := context.Background()
	opts := seqdb.SearchOptions{Parallelism: par}
	for i, q := range qs {
		wantMatches, offStats, err := off.SearchWith(ctx, index, q, eps, opts)
		if err != nil {
			return result{}, err
		}
		gotMatches, onStats, err := on.SearchWith(ctx, index, q, eps, opts)
		if err != nil {
			return result{}, err
		}
		if !identical(gotMatches, wantMatches) {
			return result{}, fmt.Errorf("%s par=%d query %d: cascade changed answers (%d vs %d) — the cascade must be invisible",
				backend, par, i, len(gotMatches), len(wantMatches))
		}
		accumulate(&res.Cascade, onStats, len(gotMatches))
		accumulate(&res.Baseline, offStats, len(wantMatches))
	}
	res.FilterCellsRatio = ratio(res.Baseline.FilterCells, res.Cascade.FilterCells)
	res.NodesRatio = ratio(res.Baseline.NodesVisited, res.Cascade.NodesVisited)
	return res, nil
}

// identical is a field-for-field (float64 bits included) answer
// comparison; order matters, since serial and parallel deliveries promise
// the same order.
func identical(a, b []seqdb.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func accumulate(m *measurement, stats seqdb.SearchStats, answers int) {
	m.FilterCells += stats.FilterCells
	m.NodesVisited += stats.NodesVisited
	m.PagesRead += stats.PagesRead
	m.LBCells += stats.LBCells
	m.EnvelopePruned += stats.EnvelopePruned
	m.Answers += uint64(answers)
	m.ElapsedSec += float64(stats.Elapsed) / float64(time.Second)
}

func ratio(base, opt uint64) float64 {
	if opt == 0 {
		return float64(base)
	}
	return float64(base) / float64(opt)
}
