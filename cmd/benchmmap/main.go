// Command benchmmap measures what the storage backends and node record
// encodings buy. It builds the stock-like workload once, indexes it under
// both encodings (v1 fixed-width, v2 compact varint), then measures every
// (encoding, backend) pair: cold-start latency (open the database and answer
// the first query on an unwarmed handle, averaged over a few cycles) and
// steady-state throughput (the query batch replayed across GOMAXPROCS
// workers on one warmed handle). Answer totals must agree across all pairs —
// the backends and encodings are different physics for the same tree. The
// report also records each index file's size and bytes per node, where the
// v2 shrink shows up. The result is written as JSON (default
// BENCH_mmap.json) for the CI trend line.
//
// Usage:
//
//	benchmmap [-scale f] [-queries n] [-eps f] [-seed n] [-out file]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"twsearch/internal/benchrun"
	"twsearch/seqdb"
)

// fileInfo describes one index file on disk.
type fileInfo struct {
	Encoding     string  `json:"encoding"`
	SizeBytes    int64   `json:"size_bytes"`
	Nodes        uint64  `json:"nodes"`
	BytesPerNode float64 `json:"bytes_per_node"`
}

// result is one (encoding, backend) measurement.
type result struct {
	Encoding    string  `json:"encoding"`
	Backend     string  `json:"backend"`
	Queries     int     `json:"queries"`
	ColdStartMS float64 `json:"cold_start_ms"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	QPS         float64 `json:"queries_per_sec"`
	Answers     uint64  `json:"answers"`
}

// report is the emitted JSON document.
type report struct {
	Scale float64 `json:"scale"`
	Eps   float64 `json:"eps"`
	Seed  int64   `json:"seed"`
	benchrun.Env
	Files []fileInfo `json:"files"`
	Runs  []result   `json:"runs"`
}

// coldCycles is how many open-query-close cycles the cold-start number
// averages over.
const coldCycles = 3

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale; 1.0 = paper scale (545 sequences)")
	queries := flag.Int("queries", 100, "queries per steady-state measurement")
	eps := flag.Float64("eps", 10, "distance threshold")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "BENCH_mmap.json", "output JSON path")
	flag.Parse()

	if err := run(*scale, *queries, *eps, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchmmap:", err)
		os.Exit(1)
	}
}

func run(scale float64, numQueries int, eps float64, seed int64, out string) error {
	dir, err := os.MkdirTemp("", "twsearch-benchmmap-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	data, qs := benchrun.StockWorkload(scale, 2, numQueries, seed)

	db, err := seqdb.Create(dir)
	if err != nil {
		return err
	}
	for i := 0; i < data.Len(); i++ {
		seq := data.Seq(i)
		if err := db.Add(seq.ID, seq.Values); err != nil {
			db.Close()
			return err
		}
	}
	// Persist the dataset: unlike the other bench commands, this one closes
	// the build handle and re-opens per (encoding, backend) pair.
	if err := db.Save(); err != nil {
		db.Close()
		return err
	}
	encodings := []seqdb.Encoding{seqdb.EncodingV1, seqdb.EncodingV2}
	rep := report{Scale: scale, Eps: eps, Seed: seed, Env: benchrun.CaptureEnv()}
	for _, enc := range encodings {
		name := indexName(enc)
		if err := db.BuildIndex(name, seqdb.IndexSpec{
			Method: seqdb.MethodMaxEntropy, Categories: 20, Sparse: true, Encoding: enc,
		}); err != nil {
			db.Close()
			return err
		}
		info, err := db.Index(name)
		if err != nil {
			db.Close()
			return err
		}
		rep.Files = append(rep.Files, fileInfo{
			Encoding:     enc.String(),
			SizeBytes:    info.SizeBytes,
			Nodes:        info.Nodes,
			BytesPerNode: float64(info.SizeBytes) / float64(info.Nodes),
		})
		fmt.Printf("index %-3s %7d KB  %d nodes  %.1f bytes/node\n",
			enc, info.SizeBytes/1024, info.Nodes, float64(info.SizeBytes)/float64(info.Nodes))
	}
	if err := db.Close(); err != nil {
		return err
	}

	var baseAnswers uint64
	for _, enc := range encodings {
		for _, backend := range []seqdb.Backend{seqdb.BackendPool, seqdb.BackendMmap} {
			r, err := measure(dir, indexName(enc), qs, eps, backend)
			if err != nil {
				return err
			}
			r.Encoding = enc.String()
			if len(rep.Runs) == 0 {
				baseAnswers = r.Answers
			} else if r.Answers != baseAnswers {
				return fmt.Errorf("%s/%s returned %d answers, baseline returned %d — backends must not change results",
					r.Encoding, r.Backend, r.Answers, baseAnswers)
			}
			rep.Runs = append(rep.Runs, r)
			fmt.Printf("%-3s %-5s cold=%7.3fms  %8.1f queries/sec  answers=%d\n",
				r.Encoding, r.Backend, r.ColdStartMS, r.QPS, r.Answers)
		}
	}

	return benchrun.WriteJSON(out, rep)
}

func indexName(enc seqdb.Encoding) string { return "bench-" + enc.String() }

// measure times one (encoding, backend) pair: cold starts on fresh handles,
// then steady-state throughput on one warmed handle across GOMAXPROCS
// workers.
func measure(dir, index string, qs [][]float64, eps float64, backend seqdb.Backend) (result, error) {
	opts := seqdb.OpenOptions{Backend: backend}

	// Cold start: open, answer the first query, close. The OS page cache
	// stays warm across cycles, so this isolates the handle setup cost —
	// pool allocation vs mmap — plus one unwarmed traversal.
	var cold time.Duration
	for i := 0; i < coldCycles; i++ {
		t0 := time.Now()
		db, err := seqdb.OpenWith(dir, opts)
		if err != nil {
			return result{}, err
		}
		if _, _, err := db.Search(index, qs[0], eps); err != nil {
			db.Close()
			return result{}, err
		}
		cold += time.Since(t0)
		if err := db.Close(); err != nil {
			return result{}, err
		}
	}

	db, err := seqdb.OpenWith(dir, opts)
	if err != nil {
		return result{}, err
	}
	defer db.Close()
	if _, _, err := db.Search(index, qs[0], eps); err != nil {
		return result{}, err
	}

	env := benchrun.CaptureEnv()
	var (
		next    atomic.Int64
		answers atomic.Uint64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  error
	)
	start := time.Now()
	for i := 0; i < env.GOMAXPROCS; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(qs) {
					return
				}
				matches, _, err := db.Search(index, qs[j], eps)
				if err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					return
				}
				answers.Add(uint64(len(matches)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstE != nil {
		return result{}, firstE
	}
	return result{
		Backend:     string(backend),
		Queries:     len(qs),
		ColdStartMS: float64(cold.Microseconds()) / 1000 / coldCycles,
		ElapsedSec:  elapsed.Seconds(),
		QPS:         float64(len(qs)) / elapsed.Seconds(),
		Answers:     answers.Load(),
	}, nil
}
