// Command benchshard measures what horizontal sharding buys a query
// workload. It builds the stock-like workload once, indexes it unsharded,
// then partitions the same data into 1, 2, 4, and 8 shards and replays
// the identical query batch against each layout. Every row reports
// queries/sec and per-query latency (average, p50, p95), plus the answer
// total — which must agree across all rows, since sharded searches are
// byte-identical to unsharded ones. The result is written as JSON
// (default BENCH_shard.json) for the CI trend line.
//
// Usage:
//
//	benchshard [-scale f] [-queries n] [-eps f] [-seed n] [-out file]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"twsearch/internal/benchrun"
	"twsearch/seqdb"
)

// searcher is the common query surface of the unsharded and sharded
// layouts.
type searcher interface {
	Search(name string, q []float64, eps float64) ([]seqdb.Match, seqdb.SearchStats, error)
}

// result is one layout measurement. Shards == 0 is the unsharded row.
type result struct {
	Shards     int     `json:"shards"`
	Queries    int     `json:"queries"`
	ElapsedSec float64 `json:"elapsed_sec"`
	QPS        float64 `json:"queries_per_sec"`
	benchrun.LatencySummary
	Speedup float64 `json:"speedup_vs_unsharded"`
	Answers uint64  `json:"answers"`
}

// report is the emitted JSON document.
type report struct {
	Scale float64 `json:"scale"`
	Eps   float64 `json:"eps"`
	Seed  int64   `json:"seed"`
	benchrun.Env
	Runs []result `json:"runs"`
}

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale; 1.0 = paper scale (545 sequences)")
	queries := flag.Int("queries", 100, "queries per layout measurement")
	eps := flag.Float64("eps", 10, "distance threshold")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "BENCH_shard.json", "output JSON path")
	flag.Parse()

	if err := run(*scale, *queries, *eps, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchshard:", err)
		os.Exit(1)
	}
}

func run(scale float64, numQueries int, eps float64, seed int64, out string) error {
	dir, err := os.MkdirTemp("", "twsearch-benchshard-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Floor at 8 sequences: every shard count below needs at least one
	// sequence per shard.
	data, qs := benchrun.StockWorkload(scale, 8, numQueries, seed)

	spec := seqdb.IndexSpec{Method: seqdb.MethodMaxEntropy, Categories: 20, Sparse: true}
	db, err := seqdb.Create(filepath.Join(dir, "flat"))
	if err != nil {
		return err
	}
	defer db.Close()
	for i := 0; i < data.Len(); i++ {
		seq := data.Seq(i)
		if err := db.Add(seq.ID, seq.Values); err != nil {
			return err
		}
	}
	if err := db.BuildIndex("bench", spec); err != nil {
		return err
	}

	rep := report{Scale: scale, Eps: eps, Seed: seed, Env: benchrun.CaptureEnv()}
	base, err := measure(db, qs, eps, 0)
	if err != nil {
		return err
	}
	base.Speedup = 1
	rep.Runs = append(rep.Runs, base)
	printRow(base)

	for _, shards := range []int{1, 2, 4, 8} {
		sdb, err := db.PartitionInto(filepath.Join(dir, fmt.Sprintf("s%d", shards)), shards)
		if err != nil {
			return err
		}
		if err := sdb.BuildIndex("bench", spec); err != nil {
			sdb.Close()
			return err
		}
		r, err := measure(sdb, qs, eps, shards)
		sdb.Close()
		if err != nil {
			return err
		}
		if r.Answers != base.Answers {
			return fmt.Errorf("shards=%d returned %d answers, unsharded returned %d — sharding must not change results",
				shards, r.Answers, base.Answers)
		}
		r.Speedup = r.QPS / base.QPS
		rep.Runs = append(rep.Runs, r)
		printRow(r)
	}

	return benchrun.WriteJSON(out, rep)
}

func printRow(r result) {
	label := "unsharded"
	if r.Shards > 0 {
		label = fmt.Sprintf("shards=%d", r.Shards)
	}
	fmt.Printf("%-10s %8.1f queries/sec  avg=%.2fms p50=%.2fms p95=%.2fms  speedup=%.2fx  answers=%d\n",
		label, r.QPS, r.AvgMS, r.P50MS, r.P95MS, r.Speedup, r.Answers)
}

// measure replays the query batch serially — per-query latency is the
// point; shard parallelism lives inside each search — and reports the
// latency distribution.
func measure(s searcher, qs [][]float64, eps float64, shards int) (result, error) {
	lat := make([]time.Duration, 0, len(qs))
	var answers uint64
	start := time.Now()
	for _, q := range qs {
		qStart := time.Now()
		matches, _, err := s.Search("bench", q, eps)
		if err != nil {
			return result{}, err
		}
		lat = append(lat, time.Since(qStart))
		answers += uint64(len(matches))
	}
	elapsed := time.Since(start)

	return result{
		Shards:         shards,
		Queries:        len(qs),
		ElapsedSec:     elapsed.Seconds(),
		QPS:            float64(len(qs)) / elapsed.Seconds(),
		LatencySummary: benchrun.Summarize(lat),
		Answers:        answers,
	}, nil
}
