// Command benchconc measures concurrent search throughput on one shared
// index handle. It builds the stock-like workload once, warms the index,
// then replays the same query batch at 1, 4, and GOMAXPROCS workers, all
// hitting the same *seqdb.DB. The result is queries/sec per worker count
// plus the speedup over the single-worker run, written as JSON (default
// BENCH_concurrency.json) for the CI trend line.
//
// Usage:
//
//	benchconc [-scale f] [-queries n] [-eps f] [-seed n] [-out file]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"twsearch/internal/benchrun"
	"twsearch/seqdb"
)

// result is one worker-count measurement.
type result struct {
	Workers    int     `json:"workers"`
	Queries    int     `json:"queries"`
	ElapsedSec float64 `json:"elapsed_sec"`
	QPS        float64 `json:"queries_per_sec"`
	Speedup    float64 `json:"speedup_vs_serial"`
	Answers    uint64  `json:"answers"`
}

// report is the emitted JSON document.
type report struct {
	Scale float64 `json:"scale"`
	Eps   float64 `json:"eps"`
	Seed  int64   `json:"seed"`
	benchrun.Env
	Runs []result `json:"runs"`
}

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale; 1.0 = paper scale (545 sequences)")
	queries := flag.Int("queries", 200, "queries per worker-count measurement")
	eps := flag.Float64("eps", 10, "distance threshold")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "BENCH_concurrency.json", "output JSON path")
	flag.Parse()

	if err := run(*scale, *queries, *eps, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchconc:", err)
		os.Exit(1)
	}
}

func run(scale float64, numQueries int, eps float64, seed int64, out string) error {
	dir, err := os.MkdirTemp("", "twsearch-benchconc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	data, qs := benchrun.StockWorkload(scale, 2, numQueries, seed)

	db, err := seqdb.Create(dir)
	if err != nil {
		return err
	}
	defer db.Close()
	for i := 0; i < data.Len(); i++ {
		seq := data.Seq(i)
		if err := db.Add(seq.ID, seq.Values); err != nil {
			return err
		}
	}
	if err := db.BuildIndex("bench", seqdb.IndexSpec{
		Method: seqdb.MethodMaxEntropy, Categories: 20, Sparse: true,
	}); err != nil {
		return err
	}

	// Warm the buffer pool so every measured run sees the same cache state;
	// the concurrency story is CPU parallelism on a warmed handle.
	if _, _, err := db.Search("bench", qs[0], eps); err != nil {
		return err
	}

	env := benchrun.CaptureEnv()
	workerCounts := []int{1, 4, env.GOMAXPROCS}
	rep := report{Scale: scale, Eps: eps, Seed: seed, Env: env}
	seen := map[int]bool{}
	for _, w := range workerCounts {
		if seen[w] {
			continue
		}
		seen[w] = true
		r, err := measure(db, qs, eps, w)
		if err != nil {
			return err
		}
		if len(rep.Runs) > 0 {
			r.Speedup = r.QPS / rep.Runs[0].QPS
		} else {
			r.Speedup = 1
		}
		rep.Runs = append(rep.Runs, r)
		fmt.Printf("workers=%-3d %8.1f queries/sec  speedup=%.2fx  answers=%d\n",
			r.Workers, r.QPS, r.Speedup, r.Answers)
	}

	return benchrun.WriteJSON(out, rep)
}

// measure replays the query batch across w workers on the shared handle.
// Every worker count runs the identical batch, so answer totals must agree
// across rows — a cheap cross-check that concurrency changed nothing.
func measure(db *seqdb.DB, qs [][]float64, eps float64, w int) (result, error) {
	var (
		next    atomic.Int64
		answers atomic.Uint64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  error
	)
	start := time.Now()
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(qs) {
					return
				}
				matches, _, err := db.Search("bench", qs[j], eps)
				if err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					return
				}
				answers.Add(uint64(len(matches)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstE != nil {
		return result{}, firstE
	}
	return result{
		Workers:    w,
		Queries:    len(qs),
		ElapsedSec: elapsed.Seconds(),
		QPS:        float64(len(qs)) / elapsed.Seconds(),
		Answers:    answers.Load(),
	}, nil
}
