package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestVectorCLILifecycle(t *testing.T) {
	db := filepath.Join(t.TempDir(), "vdb")
	out, err := captureStdout(t, func() error {
		return cmdGen([]string{"-db", db, "-dim", "2", "-n", "10", "-len", "40", "-seed", "5"})
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	if !strings.Contains(out, "generated 10 trajectories") {
		t.Fatalf("gen output: %q", out)
	}

	if _, err := captureStdout(t, func() error {
		return cmdIndex([]string{"-db", db, "-name", "g", "-cats", "5", "-sparse"})
	}); err != nil {
		t.Fatalf("index: %v", err)
	}

	out, err = captureStdout(t, func() error { return cmdStats([]string{"-db", db}) })
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out, "dimension: 2") || !strings.Contains(out, `index "g"`) {
		t.Fatalf("stats output: %q", out)
	}

	qOut, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-name", "g", "-eps", "4",
			"-from", "traj-0003", "-start", "5", "-len", "6", "-limit", "2"}, modeRange)
	})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	sOut, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-eps", "4",
			"-from", "traj-0003", "-start", "5", "-len", "6", "-limit", "2"}, modeScan)
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if strings.Fields(qOut)[0] != strings.Fields(sOut)[0] {
		t.Fatalf("index %s matches vs scan %s", strings.Fields(qOut)[0], strings.Fields(sOut)[0])
	}

	kOut, err := captureStdout(t, func() error {
		return cmdQuery([]string{"-db", db, "-name", "g", "-k", "3",
			"-from", "traj-0003", "-start", "5", "-len", "6"}, modeKNN)
	})
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	if !strings.HasPrefix(kOut, "3 matches") {
		t.Fatalf("knn output: %q", kOut)
	}

	if _, err := captureStdout(t, func() error {
		return cmdDrop([]string{"-db", db, "-name", "g"})
	}); err != nil {
		t.Fatalf("drop: %v", err)
	}
}

func TestVectorCLIErrors(t *testing.T) {
	if err := cmdCreate([]string{}); err == nil {
		t.Error("create without -db accepted")
	}
	if err := cmdQuery([]string{"-db", "nowhere", "-from", "x"}, modeRange); err == nil {
		t.Error("missing database accepted")
	}
	if err := cmdIndex([]string{"-db", "nowhere"}); err == nil {
		t.Error("missing name accepted")
	}
}
