// Command vecdbctl manages multivariate (vector) twsearch databases — the
// paper's conclusion-section extension — from the shell.
//
// Usage:
//
//	vecdbctl create -db DIR -dim D
//	vecdbctl gen    -db DIR -dim D [-n N] [-len L] [-seed S]
//	vecdbctl stats  -db DIR
//	vecdbctl index  -db DIR -name NAME [-cats N] [-sparse] [-window W]
//	vecdbctl drop   -db DIR -name NAME
//	vecdbctl query  -db DIR -name NAME -eps E -from SEQID [-start P] [-len L]
//	vecdbctl scan   -db DIR -eps E -from SEQID [-start P] [-len L]
//	vecdbctl knn    -db DIR -name NAME -k K -from SEQID [-start P] [-len L]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"twsearch/seqdb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "create":
		err = cmdCreate(args)
	case "gen":
		err = cmdGen(args)
	case "stats":
		err = cmdStats(args)
	case "index":
		err = cmdIndex(args)
	case "drop":
		err = cmdDrop(args)
	case "query":
		err = cmdQuery(args, modeRange)
	case "scan":
		err = cmdQuery(args, modeScan)
	case "knn":
		err = cmdQuery(args, modeKNN)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vecdbctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vecdbctl create|gen|stats|index|drop|query|scan|knn [flags]")
	os.Exit(2)
}

func cmdCreate(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	dim := fs.Int("dim", 2, "vector dimension")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("create: -db required")
	}
	d, err := seqdb.CreateVector(*db, *dim)
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Printf("created empty %d-dimensional vector database in %s\n", *dim, *db)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	dim := fs.Int("dim", 2, "vector dimension")
	n := fs.Int("n", 50, "number of sequences")
	length := fs.Int("len", 100, "points per sequence")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("gen: -db required")
	}
	d, err := seqdb.CreateVector(*db, *dim)
	if err != nil {
		return err
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *n; i++ {
		points := make([][]float64, *length)
		v := make([]float64, *dim)
		for k := range v {
			v[k] = rng.Float64() * 20
		}
		for j := range points {
			p := make([]float64, *dim)
			for k := range p {
				v[k] += rng.NormFloat64()
				p[k] = v[k]
			}
			points[j] = p
		}
		if err := d.Add(fmt.Sprintf("traj-%04d", i), points); err != nil {
			return err
		}
	}
	if err := d.Save(); err != nil {
		return err
	}
	fmt.Printf("generated %d trajectories of %d %d-D points into %s\n", *n, *length, *dim, *db)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	fs.Parse(args)
	d, err := seqdb.OpenVector(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Printf("dimension: %d\n", d.Dim())
	fmt.Printf("sequences: %d\n", d.Len())
	names := d.Indexes()
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("index %q\n", name)
	}
	return nil
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	name := fs.String("name", "", "index name")
	cats := fs.Int("cats", 8, "categories per dimension")
	sparse := fs.Bool("sparse", false, "sparse suffix tree")
	window := fs.Int("window", 0, "warping window half-width (0 = none)")
	fs.Parse(args)
	if *db == "" || *name == "" {
		return fmt.Errorf("index: -db and -name required")
	}
	d, err := seqdb.OpenVector(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.BuildIndex(*name, seqdb.VectorIndexSpec{
		CatsPerDim: *cats, Sparse: *sparse, Window: *window,
	}); err != nil {
		return err
	}
	fmt.Printf("built vector index %q\n", *name)
	return nil
}

func cmdDrop(args []string) error {
	fs := flag.NewFlagSet("drop", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	name := fs.String("name", "", "index name")
	fs.Parse(args)
	d, err := seqdb.OpenVector(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.DropIndex(*name); err != nil {
		return err
	}
	fmt.Printf("dropped vector index %q\n", *name)
	return nil
}

type queryMode int

const (
	modeRange queryMode = iota
	modeScan
	modeKNN
)

func cmdQuery(args []string, mode queryMode) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	db := fs.String("db", "", "database directory")
	name := fs.String("name", "", "index name (query/knn)")
	eps := fs.Float64("eps", 0, "distance threshold (query/scan)")
	k := fs.Int("k", 10, "neighbors (knn)")
	from := fs.String("from", "", "take the query from this sequence id")
	start := fs.Int("start", 0, "query start within -from")
	qlen := fs.Int("len", 10, "query length within -from")
	limit := fs.Int("limit", 20, "max matches to print")
	fs.Parse(args)
	if *db == "" || *from == "" {
		return fmt.Errorf("-db and -from required")
	}
	d, err := seqdb.OpenVector(*db)
	if err != nil {
		return err
	}
	defer d.Close()
	points := d.Points(*from)
	if points == nil {
		return fmt.Errorf("no sequence %q", *from)
	}
	if *start < 0 || *start+*qlen > len(points) {
		return fmt.Errorf("query range [%d,%d) out of bounds (len %d)", *start, *start+*qlen, len(points))
	}
	q := points[*start : *start+*qlen]

	var matches []seqdb.VectorMatch
	switch mode {
	case modeRange:
		if *name == "" {
			return fmt.Errorf("query: -name required")
		}
		matches, err = d.Search(*name, q, *eps)
	case modeScan:
		matches, err = d.SeqScan(q, *eps)
	case modeKNN:
		if *name == "" {
			return fmt.Errorf("knn: -name required")
		}
		matches, err = d.SearchKNN(*name, q, *k)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%d matches\n", len(matches))
	sort.Slice(matches, func(i, j int) bool { return matches[i].Distance < matches[j].Distance })
	for i, m := range matches {
		if i >= *limit {
			fmt.Printf("... and %d more\n", len(matches)-*limit)
			break
		}
		fmt.Printf("  %-12s [%4d:%4d) dist=%.3f\n", m.SeqID, m.Start, m.End, m.Distance)
	}
	return nil
}
